#include "farm/client.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "driver/results.h"
#include "farm/protocol.h"
#include "farm/version.h"

namespace dmdp::farm {

using driver::JobResult;
using driver::Json;
using driver::SweepJob;
using driver::SweepReport;

namespace {

std::string
autoSweepId()
{
    // Unique per daemon lifetime is all that is required; pid + a
    // wall-clock stamp + a process-local counter covers concurrent
    // submitters on one host and repeated submits from one process.
    static std::atomic<uint64_t> counter{0};
    auto now = std::chrono::system_clock::now().time_since_epoch();
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(now);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "sweep-%d-%llx-%llu",
                  static_cast<int>(::getpid()),
                  static_cast<unsigned long long>(us.count()),
                  static_cast<unsigned long long>(counter.fetch_add(1)));
    return buf;
}

Socket
connectWithin(const std::string &addr, double budgetSec)
{
    auto start = std::chrono::steady_clock::now();
    std::string lastErr;
    int attempts = 0;
    for (;;) {
        try {
            ++attempts;
            return connectTo(addr);
        } catch (const std::exception &e) {
            lastErr = e.what();
        }
        double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        if (elapsed >= budgetSec)
            throw std::runtime_error(
                "farm: cannot reach daemon at " + addr + " after " +
                std::to_string(attempts) + " attempts over " +
                std::to_string(budgetSec) + "s: " + lastErr);
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
}

} // namespace

SweepReport
submitSweep(const std::vector<SweepJob> &jobs, const SubmitOptions &opt,
            const driver::SweepRunner::Progress &progress)
{
    SweepReport report;
    if (jobs.empty())
        return report;

    std::string sweepId =
        opt.sweepId.empty() ? autoSweepId() : opt.sweepId;

    Socket sock = connectWithin(opt.addr, opt.connectTimeoutSec);
    int fd = sock.fd();

    HelloInfo hello;
    hello.peer = "client-" + std::to_string(::getpid());
    hello.role = "client";
    hello.token = opt.token;
    if (!sendFrame(fd, MsgType::Hello, makeHello(hello)))
        throw std::runtime_error("farm: daemon hung up mid-handshake");
    MsgType type;
    Json payload;
    if (recvFrameD(fd, type, payload, 15.0) != IoStatus::Ok ||
        type != MsgType::HelloAck)
        throw std::runtime_error("farm: no HelloAck from daemon (not a "
                                 "dmdp farm coordinator?)");
    try {
        if (!payload.at("ok").asBool())
            throw std::runtime_error("farm: daemon rejected us: " +
                                     payload.at("reason").asString());
    } catch (const driver::JsonError &) {
        throw std::runtime_error("farm: malformed HelloAck from daemon");
    }

    Json submit = Json::object();
    submit.set("sweep", sweepId);
    Json arr = Json::array();
    for (const auto &job : jobs)
        arr.push(jobToJson(job));
    submit.set("jobs", std::move(arr));
    if (!sendFrame(fd, MsgType::SweepSubmit, submit))
        throw std::runtime_error("farm: daemon hung up on SweepSubmit");

    report.results.resize(jobs.size());
    std::vector<char> have(jobs.size(), 0);
    size_t completed = 0;

    for (;;) {
        // Results can legitimately be a long time apart (slow jobs,
        // few workers); only total silence of the daemon itself is a
        // failure, and that arrives as Eof.
        IoStatus st = recvFrameD(fd, type, payload, -1.0);
        if (st != IoStatus::Ok)
            throw std::runtime_error(
                "farm: lost the daemon mid-sweep (" +
                std::to_string(completed) + "/" +
                std::to_string(jobs.size()) + " results in)");

        if (type == MsgType::Result) {
            size_t idx;
            JobResult r;
            try {
                idx = static_cast<size_t>(payload.at("idx").asNumber());
                if (!driver::resultFromJson(payload.at("result"), r))
                    throw std::runtime_error(
                        "farm: malformed result from daemon");
            } catch (const driver::JsonError &) {
                throw std::runtime_error(
                    "farm: malformed result frame from daemon");
            }
            if (idx >= jobs.size() || have[idx])
                throw std::runtime_error(
                    "farm: daemon sent an out-of-range or duplicate "
                    "result index");
            // Job identity is authoritative locally, same as the
            // coordinator does for worker results.
            r.job = jobs[idx];
            r.configDigest = driver::configDigest(jobs[idx].cfg);
            report.results[idx] = std::move(r);
            have[idx] = 1;
            ++completed;
            if (progress)
                progress(report.results[idx], completed, jobs.size());
            continue;
        }

        if (type == MsgType::SweepDone) {
            bool ok = false;
            try {
                ok = payload.at("ok").asBool();
            } catch (const driver::JsonError &) {
            }
            if (!ok) {
                std::string err = "unspecified";
                if (payload.has("error"))
                    err = payload.at("error").asString();
                throw std::runtime_error(
                    "farm: daemon rejected the sweep: " + err);
            }
            if (completed != jobs.size())
                throw std::runtime_error(
                    "farm: daemon finished the sweep with only " +
                    std::to_string(completed) + "/" +
                    std::to_string(jobs.size()) + " results");
            try {
                if (payload.has("warnings")) {
                    const Json &jw = payload.at("warnings");
                    for (size_t i = 0; i < jw.size(); ++i)
                        report.warnings.push_back(jw.at(i).asString());
                }
                if (payload.has("workerJobs")) {
                    const Json &wj = payload.at("workerJobs");
                    for (const auto &[key, val] : wj.items())
                        report.workerJobs.emplace_back(
                            key,
                            static_cast<size_t>(val.asNumber()));
                }
                auto num = [&](const char *key) -> uint64_t {
                    return payload.has(key)
                        ? static_cast<uint64_t>(
                              payload.at(key).asNumber())
                        : 0;
                };
                report.cacheHits = num("cacheHits");
                report.cacheMisses = num("cacheMisses");
                report.reapedDispatches = num("reaped");
                report.redispatchedJobs = num("redispatched");
                report.rejectedPeers = num("rejected");
            } catch (const driver::JsonError &) {
                report.warnings.push_back(
                    "farm: malformed SweepDone counters from daemon");
            }
            break;
        }

        throw std::runtime_error("farm: unexpected frame from daemon "
                                 "mid-sweep");
    }

    for (const auto &r : report.results) {
        report.failed += !r.ok;
        report.timedOut += r.timedOut;
    }
    return report;
}

} // namespace dmdp::farm
