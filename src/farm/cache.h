/**
 * @file
 * On-disk content-addressed result cache: the farm's memory. Every
 * completed job is stored under its full cache key — (configDigest,
 * workload digest, insts, stats-schema digest) — so any job ever
 * computed by any process on any host sharing the cache directory is
 * never computed again. Entries restore through the same
 * assignStatField path the sweep journal uses, making a cached result
 * bit-for-bit identical to recomputation.
 *
 * Layout (under the cache directory):
 *
 *   results/<hh>/<16-hex-key>.json    one entry per key, sharded by the
 *                                     first key byte (256 shards)
 *   workloads/<hh>/<16-hex-key>.json  workload-digest memo: (program
 *                                     digest, insts, recordCap) ->
 *                                     sealed-trace digest
 *   tmp/                              staging for atomic writes
 *
 * Atomicity: entries are written to tmp/ and renamed into place —
 * rename(2) is atomic on a POSIX filesystem, so readers only ever see
 * complete documents; two writers racing the same key both write valid
 * identical content and either rename wins. A corrupt or truncated
 * entry (torn external copy, disk trouble) is treated as a miss, never
 * an error, and is repaired by the next store.
 */

#ifndef DMDP_FARM_CACHE_H
#define DMDP_FARM_CACHE_H

#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>

#include "driver/sweep.h"

namespace dmdp::farm {

/** File-backed implementation of the driver's JobCache interface. */
class ResultCache : public driver::JobCache
{
  public:
    /**
     * Open (creating as needed) the cache rooted at @p dir. Throws
     * std::runtime_error when the directory cannot be created.
     */
    explicit ResultCache(std::string dir);

    const std::string &dir() const { return dir_; }

    bool lookup(const Key &key, SimStats &stats) override;
    void store(const Key &key, const driver::JobResult &result) override;

    bool lookupTraceDigest(uint64_t programDigest, uint64_t insts,
                           uint64_t recordCap,
                           uint64_t &traceDigest) override;
    void storeTraceDigest(uint64_t programDigest, uint64_t insts,
                          uint64_t recordCap,
                          uint64_t traceDigest) override;

    /**
     * The DMDP_CACHE_DIR environment variable, or "" when unset — the
     * default cache location when --cache is not passed explicitly.
     */
    static std::string envDir();

    /**
     * Corrupt entries detected and removed by lookups so far: a torn
     * external copy or disk trouble reads as a miss, the bad file is
     * unlinked (the next store rewrites it atomically), and this
     * counter makes the repair visible instead of silent.
     */
    uint64_t repairs() const { return repairs_.load(); }

  private:
    uint64_t resultKeyHash(const Key &key) const;
    uint64_t workloadKeyHash(uint64_t programDigest, uint64_t insts,
                             uint64_t recordCap) const;
    std::string shardPath(const char *kind, uint64_t hash) const;
    void atomicWrite(const std::string &path, const std::string &text);

    std::string dir_;
    std::atomic<uint64_t> tmpCounter_{0};
    std::atomic<uint64_t> repairs_{0};

    // In-memory mirror of the workload memo: the same (proxy, insts)
    // group is digested once per sweep, but farm workers probe per job.
    std::mutex memoMutex_;
    std::unordered_map<uint64_t, uint64_t> memo_;
};

} // namespace dmdp::farm

#endif // DMDP_FARM_CACHE_H
