#include "farm/worker.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "driver/results.h"
#include "farm/protocol.h"
#include "farm/version.h"

namespace dmdp::farm {

using driver::JobResult;
using driver::Json;
using driver::SweepJob;

namespace {

std::string
defaultWorkerName()
{
    char host[256] = "worker";
    ::gethostname(host, sizeof(host) - 1);
    host[sizeof(host) - 1] = '\0';
    return std::string(host) + ":" +
           std::to_string(static_cast<long>(::getpid()));
}

/**
 * Connect, retrying while the coordinator may still be binding. An
 * exhausted budget throws with the attempt count and the last
 * underlying error — "connection refused after 47 attempts over 10s"
 * diagnoses a dead coordinator; "no route to host" a typo'd address.
 */
Socket
connectWithRetry(const std::string &addr, double timeoutSec)
{
    auto start = std::chrono::steady_clock::now();
    std::string lastErr = "no attempt made";
    size_t attempts = 0;
    for (;;) {
        try {
            ++attempts;
            return connectTo(addr);
        } catch (const std::runtime_error &e) {
            lastErr = e.what();
        }
        double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        if (elapsed >= timeoutSec) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%zu attempts over %.1fs",
                          attempts, elapsed);
            throw std::runtime_error("farm: cannot reach coordinator "
                                     "at " + addr + " after " + buf +
                                     "; last error: " + lastErr);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
}

/**
 * Run one received job through the regular sweep machinery. Exactly one
 * job per runReport call: the watchdog, retry, and cache behavior is
 * identical to a local sweep's, and single-job sweeps run their
 * workload live (no shared trace to capture), so the cache keys are
 * program-digest based. @p progress is bumped per retired instruction
 * for the heartbeat thread to report.
 */
JobResult
runOneJob(const SweepJob &job, const WorkerOptions &opt,
          std::atomic<uint64_t> *progress)
{
    driver::SweepRunner runner(1);
    driver::SweepOptions sweepOpt;
    sweepOpt.jobTimeoutSec = opt.jobTimeoutSec;
    sweepOpt.retries = opt.retries;
    sweepOpt.cache = opt.cache;
    sweepOpt.liveProgress = progress;
    driver::SweepReport report = runner.runReport({job}, sweepOpt);
    return std::move(report.results.at(0));
}

enum class ConnEnd : uint8_t
{
    Bye,      ///< coordinator said Bye: sweep over, exit cleanly
    Lost,     ///< connection died/wedged: candidate for reconnect
    Rejected, ///< handshake refused: deterministic, do not retry
};

/**
 * One established connection's pull loop: handshake, then
 * JobRequest/Job/Result (with heartbeats while the job runs) until Bye
 * or the connection dies. @p completed counts finished jobs across
 * reconnects of the same thread.
 */
ConnEnd
runConnection(Socket &sock, const WorkerOptions &opt,
              const std::string &name, size_t &completed,
              std::string &rejectReason)
{
    int fd = sock.fd();
    // Heartbeats interleave with Result/JobRequest sends from the job
    // thread; one frame at a time per socket.
    std::mutex sendMutex;
    auto send = [&](MsgType type, const Json &payload) {
        std::lock_guard<std::mutex> lock(sendMutex);
        return sendFrame(fd, type, payload);
    };

    HelloInfo hello;
    hello.peer = name;
    hello.role = "worker";
    hello.cache = opt.cache != nullptr;
    hello.token = opt.token;
    if (!send(MsgType::Hello, makeHello(hello)))
        return ConnEnd::Lost;
    MsgType type;
    Json payload;
    if (recvFrameD(fd, type, payload, opt.idleRecvSec) !=
            IoStatus::Ok ||
        type != MsgType::HelloAck)
        return ConnEnd::Lost;
    try {
        if (!payload.at("ok").asBool()) {
            rejectReason = payload.at("reason").asString();
            return ConnEnd::Rejected;
        }
    } catch (const driver::JsonError &) {
        return ConnEnd::Lost;
    }

    for (;;) {
        if (!send(MsgType::JobRequest, Json::object()))
            return ConnEnd::Lost;
        // A coordinator that answers nothing within idleRecvSec lost
        // our request (or wedged): reconnecting re-issues it.
        IoStatus st = recvFrameD(fd, type, payload, opt.idleRecvSec);
        if (st != IoStatus::Ok)
            return ConnEnd::Lost;
        if (type == MsgType::Bye)
            return ConnEnd::Bye;
        if (type == MsgType::Idle) {
            // Daemon with no work right now: stay connected, re-ask.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(250));
            continue;
        }
        if (type != MsgType::Job)
            return ConnEnd::Lost;

        std::string sweepId = "local";
        size_t idx;
        uint64_t wantDigest;
        SweepJob job;
        JobResult result;
        try {
            if (payload.has("sweep"))
                sweepId = payload.at("sweep").asString();
            idx = static_cast<size_t>(payload.at("idx").asNumber());
            wantDigest = std::strtoull(
                payload.at("configDigest").asString().c_str(), nullptr,
                16);
            if (!jobFromJson(payload.at("job"), job))
                return ConnEnd::Lost;
        } catch (const driver::JsonError &) {
            return ConnEnd::Lost;
        }

        uint64_t gotDigest = driver::configDigest(job.cfg);
        if (gotDigest != wantDigest) {
            // Version skew between coordinator and worker binaries that
            // slipped past the handshake: the config did not survive
            // the round trip bit-exactly. Refuse the job loudly rather
            // than compute numbers for a machine the coordinator did
            // not ask for.
            result.job = job;
            result.configDigest = gotDigest;
            result.ok = false;
            result.error = "farm worker config digest mismatch "
                           "(coordinator/worker version skew?)";
        } else {
            std::atomic<uint64_t> progress{0};
            std::atomic<bool> jobDone{false};
            std::thread heartbeat;
            if (opt.heartbeatSec > 0)
                heartbeat = std::thread([&] {
                    auto last = std::chrono::steady_clock::now();
                    for (;;) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(50));
                        if (jobDone.load(std::memory_order_acquire))
                            return;
                        double sinceLast =
                            std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - last)
                                .count();
                        if (sinceLast < opt.heartbeatSec)
                            continue;
                        last = std::chrono::steady_clock::now();
                        Json beat = Json::object();
                        beat.set("sweep", sweepId);
                        beat.set("idx",
                                 Json(static_cast<double>(idx)));
                        beat.set("insts",
                                 Json(static_cast<double>(
                                     progress.load(
                                         std::memory_order_relaxed))));
                        // A failed heartbeat is not fatal here: the
                        // Result send right after the job surfaces the
                        // dead connection.
                        send(MsgType::Heartbeat, beat);
                    }
                });
            result = runOneJob(job, opt, &progress);
            jobDone.store(true, std::memory_order_release);
            if (heartbeat.joinable())
                heartbeat.join();
        }

        Json msg = Json::object();
        msg.set("sweep", sweepId);
        msg.set("idx", Json(static_cast<double>(idx)));
        msg.set("cache_probed", opt.cache != nullptr);
        msg.set("result", driver::resultToJson(result));
        if (!send(MsgType::Result, msg))
            return ConnEnd::Lost;
        ++completed;
    }
}

struct LoopStats
{
    size_t jobs = 0;
    size_t reconnects = 0;
};

/** One worker thread: connect (with retry), pull jobs, and on a lost
 *  connection reconnect with jittered exponential backoff. */
LoopStats
workerLoop(const WorkerOptions &opt, const std::string &name,
           unsigned threadIdx)
{
    LoopStats stats;
    // Jitter decorrelates a fleet of workers hammering a restarting
    // coordinator; seeded per thread, no global rand() state.
    std::minstd_rand rng(static_cast<unsigned>(
        std::hash<std::string>{}(name) ^ (threadIdx * 0x9e3779b9u) ^
        static_cast<unsigned>(
            std::chrono::steady_clock::now().time_since_epoch().count())));

    bool everConnected = false;
    uint32_t failures = 0;
    for (;;) {
        Socket sock;
        if (!everConnected) {
            sock = connectWithRetry(opt.addr, opt.connectTimeoutSec);
            everConnected = true;
        } else {
            if (failures >= opt.reconnectAttempts)
                break;
            uint32_t baseMs = std::max(opt.reconnectBackoffMs, 1u);
            uint32_t base = std::min(baseMs << failures, 20u * baseMs);
            uint32_t jitter = rng() % (base / 2 + 1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(base + jitter));
            try {
                sock = connectTo(opt.addr);
            } catch (const std::runtime_error &) {
                ++failures;
                continue;
            }
            ++stats.reconnects;
        }

        std::string rejectReason;
        size_t before = stats.jobs;
        ConnEnd end = runConnection(sock, opt, name, stats.jobs,
                                    rejectReason);
        if (end == ConnEnd::Bye)
            break;
        if (end == ConnEnd::Rejected)
            throw std::runtime_error(
                "farm: coordinator rejected worker '" + name + "': " +
                rejectReason);
        // Lost. A connection that produced work resets the budget —
        // only consecutive fruitless attempts give up the sweep.
        failures = stats.jobs > before ? 0 : failures + 1;
    }
    return stats;
}

} // namespace

WorkerReport
runWorkerReport(const WorkerOptions &opt)
{
    unsigned threads = opt.threads ? opt.threads : driver::defaultJobCount();
    std::string name = opt.name.empty() ? defaultWorkerName() : opt.name;

    // Connection failures are surfaced only when no thread got any work
    // at all — an unreachable coordinator throws, but a coordinator that
    // finished (and closed) while some threads were still connecting is
    // a normal end of sweep. Handshake rejections always surface (total
    // stays 0: a rejected worker is rejected on every connection).
    std::atomic<size_t> total{0};
    std::atomic<size_t> reconnects{0};
    std::vector<std::thread> pool;
    std::exception_ptr firstError;
    std::mutex errorMutex;
    for (unsigned i = 0; i < threads; ++i)
        pool.emplace_back([&, i] {
            try {
                LoopStats stats = workerLoop(opt, name, i);
                total.fetch_add(stats.jobs);
                reconnects.fetch_add(stats.reconnects);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
        });
    for (auto &th : pool)
        th.join();
    if (total.load() == 0 && firstError)
        std::rethrow_exception(firstError);
    WorkerReport report;
    report.jobs = total.load();
    report.reconnects = reconnects.load();
    return report;
}

size_t
runWorker(const WorkerOptions &opt)
{
    return runWorkerReport(opt).jobs;
}

} // namespace dmdp::farm
