#include "farm/worker.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "driver/results.h"
#include "farm/protocol.h"

namespace dmdp::farm {

using driver::JobResult;
using driver::Json;
using driver::SweepJob;

namespace {

std::string
defaultWorkerName()
{
    char host[256] = "worker";
    ::gethostname(host, sizeof(host) - 1);
    host[sizeof(host) - 1] = '\0';
    return std::string(host) + ":" +
           std::to_string(static_cast<long>(::getpid()));
}

/** Connect, retrying while the coordinator may still be binding. */
Socket
connectWithRetry(const std::string &addr, double timeoutSec)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(timeoutSec);
    for (;;) {
        try {
            return connectTo(addr);
        } catch (const std::runtime_error &) {
            if (std::chrono::steady_clock::now() >= deadline)
                throw;
            std::this_thread::sleep_for(std::chrono::milliseconds(200));
        }
    }
}

/**
 * Run one received job through the regular sweep machinery. Exactly one
 * job per runReport call: the watchdog, retry, and cache behavior is
 * identical to a local sweep's, and single-job sweeps run their
 * workload live (no shared trace to capture), so the cache keys are
 * program-digest based.
 */
JobResult
runOneJob(const SweepJob &job, const WorkerOptions &opt)
{
    driver::SweepRunner runner(1);
    driver::SweepOptions sweepOpt;
    sweepOpt.jobTimeoutSec = opt.jobTimeoutSec;
    sweepOpt.retries = opt.retries;
    sweepOpt.cache = opt.cache;
    driver::SweepReport report = runner.runReport({job}, sweepOpt);
    return std::move(report.results.at(0));
}

/** One connection's pull loop; returns jobs completed on it. */
size_t
workerLoop(const WorkerOptions &opt, const std::string &name)
{
    Socket sock = connectWithRetry(opt.addr, opt.connectTimeoutSec);

    Json hello = Json::object();
    hello.set("worker", name);
    hello.set("cache", opt.cache != nullptr);
    if (!sendFrame(sock.fd(), MsgType::Hello, hello))
        return 0;

    size_t completed = 0;
    for (;;) {
        if (!sendFrame(sock.fd(), MsgType::JobRequest, Json::object()))
            return completed;
        MsgType type;
        Json payload;
        if (!recvFrame(sock.fd(), type, payload))
            return completed;   // coordinator gone
        if (type != MsgType::Job)
            return completed;   // Bye (or protocol skew): done

        size_t idx;
        uint64_t wantDigest;
        SweepJob job;
        JobResult result;
        try {
            idx = static_cast<size_t>(payload.at("idx").asNumber());
            wantDigest = std::strtoull(
                payload.at("configDigest").asString().c_str(), nullptr,
                16);
            if (!jobFromJson(payload.at("job"), job))
                return completed;
        } catch (const driver::JsonError &) {
            return completed;
        }

        uint64_t gotDigest = driver::configDigest(job.cfg);
        if (gotDigest != wantDigest) {
            // Version skew between coordinator and worker binaries: the
            // config did not survive the round trip bit-exactly. Refuse
            // the job loudly rather than compute numbers for a machine
            // the coordinator did not ask for.
            result.job = job;
            result.configDigest = gotDigest;
            result.ok = false;
            result.error = "farm worker config digest mismatch "
                           "(coordinator/worker version skew?)";
        } else {
            result = runOneJob(job, opt);
        }

        Json msg = Json::object();
        msg.set("idx", Json(static_cast<double>(idx)));
        msg.set("cache_probed", opt.cache != nullptr);
        msg.set("result", driver::resultToJson(result));
        if (!sendFrame(sock.fd(), MsgType::Result, msg))
            return completed;
        ++completed;
    }
}

} // namespace

size_t
runWorker(const WorkerOptions &opt)
{
    unsigned threads = opt.threads ? opt.threads : driver::defaultJobCount();
    std::string name = opt.name.empty() ? defaultWorkerName() : opt.name;

    // Connection failures are surfaced only when no thread got any work
    // at all — an unreachable coordinator throws, but a coordinator that
    // finished (and closed) while some threads were still connecting is
    // a normal end of sweep.
    std::atomic<size_t> total{0};
    std::vector<std::thread> pool;
    std::exception_ptr firstError;
    std::mutex errorMutex;
    for (unsigned i = 0; i < threads; ++i)
        pool.emplace_back([&, i] {
            try {
                total.fetch_add(workerLoop(opt, name));
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
        });
    for (auto &th : pool)
        th.join();
    if (total.load() == 0 && firstError)
        std::rethrow_exception(firstError);
    return total.load();
}

} // namespace dmdp::farm
