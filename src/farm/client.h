/**
 * @file
 * The farm client: submit a sweep to a resident FarmDaemon and stream
 * the results back, assembling a SweepReport exactly like a one-shot
 * serveFarm() run would. `dmdp_sim --farm-submit host:port` is a thin
 * wrapper around this.
 *
 * The client speaks the same handshake as workers (role "client"), so
 * token/build/schema skew between the submitting binary and the daemon
 * is rejected loudly at connect time — before a single job is queued.
 */

#ifndef DMDP_FARM_CLIENT_H
#define DMDP_FARM_CLIENT_H

#include <string>
#include <vector>

#include "driver/sweep.h"

namespace dmdp::farm {

struct SubmitOptions
{
    /** Daemon's host:port. */
    std::string addr;

    /** Shared auth token; must match the daemon's ("" = none). */
    std::string token;

    /**
     * Sweep namespace id, unique per daemon lifetime; "" generates
     * one from pid + clock. A duplicate id is rejected by the daemon.
     */
    std::string sweepId;

    /** Budget for reaching the daemon, in seconds. */
    double connectTimeoutSec = 10.0;
};

/**
 * Submit @p jobs to the daemon at opt.addr and block until the sweep
 * completes; results land in job order. Throws std::runtime_error when
 * the daemon is unreachable, rejects the handshake or the submission,
 * or vanishes mid-sweep.
 */
driver::SweepReport
submitSweep(const std::vector<driver::SweepJob> &jobs,
            const SubmitOptions &opt,
            const driver::SweepRunner::Progress &progress = {});

} // namespace dmdp::farm

#endif // DMDP_FARM_CLIENT_H
