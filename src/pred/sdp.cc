#include "pred/sdp.h"

#include <cassert>

#include "common/bitutil.h"
#include "inject/faultport.h"

namespace dmdp {

Sdp::PredTable::PredTable(uint32_t n_entries, uint32_t n_ways)
    : sets(n_entries / n_ways),
      ways(n_ways),
      entries(n_entries)
{
    assert(isPow2(sets));
}

Sdp::Entry *
Sdp::PredTable::find(uint32_t index, uint32_t tag)
{
    Entry *base = &entries[static_cast<size_t>(index % sets) * ways];
    for (uint32_t way = 0; way < ways; ++way) {
        if (base[way].valid && base[way].tag == tag) {
            base[way].lruStamp = ++stamp;
            return &base[way];
        }
    }
    return nullptr;
}

Sdp::Entry *
Sdp::PredTable::allocate(uint32_t index, uint32_t tag, uint32_t init_conf,
                         uint32_t max_conf)
{
    Entry *base = &entries[static_cast<size_t>(index % sets) * ways];
    Entry *victim = base;
    for (uint32_t way = 0; way < ways; ++way) {
        if (!base[way].valid) {
            victim = &base[way];
            break;
        }
        if (base[way].lruStamp < victim->lruStamp)
            victim = &base[way];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->distance = 0;
    victim->conf = ConfidenceCounter(init_conf, max_conf);
    victim->lruStamp = ++stamp;
    return victim;
}

Sdp::Sdp(const SimConfig &config)
    : cfg(config),
      insens(config.sdpEntries, config.sdpWays),
      sens(config.sdpEntries, config.sdpWays)
{}

uint32_t
Sdp::insensIndex(uint32_t pc) const
{
    return pc >> 2;
}

uint32_t
Sdp::sensIndex(uint32_t pc, uint32_t history) const
{
    uint32_t hist = history & ((1u << cfg.sdpHistoryBits) - 1u);
    return (pc >> 2) ^ hist;
}

SdpPrediction
Sdp::predict(uint32_t pc, uint32_t history)
{
    ++lookups_;
    SdpPrediction pred;

    // Both tables are read in parallel; the path-sensitive prediction
    // wins if available (section IV-A-d).
    if (Entry *entry = sens.find(sensIndex(pc, history), pc)) {
        pred.dependent = true;
        pred.distance = entry->distance;
        pred.confident = entry->conf.confident(cfg.confidenceThreshold);
        pred.pathSensitive = true;
    } else if (Entry *entry = insens.find(insensIndex(pc), pc)) {
        pred.dependent = true;
        pred.distance = entry->distance;
        pred.confident = entry->conf.confident(cfg.confidenceThreshold);
    }
    DMDP_FAULT_HOOK(sdpPrediction, pred.dependent, pred.distance,
                    pred.confident);
    return pred;
}

void
Sdp::updateTable(PredTable &table, uint32_t index, uint32_t tag,
                 bool actually_dependent, uint32_t actual_distance)
{
    Entry *entry = table.find(index, tag);

    if (!actually_dependent) {
        // Predicted dependent (or re-executed) but the load was actually
        // independent: a misprediction against any existing entry.
        if (entry)
            entry->conf.incorrect(cfg.biasedConfidence);
        return;
    }

    if (actual_distance > kMaxDistance) {
        // Unrepresentable distance: treat as independent (the hardware
        // distance field saturates at 6 bits).
        if (entry)
            entry->conf.incorrect(cfg.biasedConfidence);
        return;
    }

    if (!entry) {
        entry = table.allocate(index, tag, cfg.confidenceInit,
                               cfg.confidenceMax);
        entry->distance = actual_distance;
        ++allocations_;
        return;
    }

    if (entry->distance == actual_distance) {
        entry->conf.correct();
    } else {
        entry->conf.incorrect(cfg.biasedConfidence);
        entry->distance = actual_distance;
    }
}

void
Sdp::update(uint32_t pc, uint32_t history, bool actually_dependent,
            uint32_t actual_distance)
{
    updateTable(insens, insensIndex(pc), pc, actually_dependent,
                actual_distance);
    updateTable(sens, sensIndex(pc, history), pc, actually_dependent,
                actual_distance);
}

} // namespace dmdp
