#include "pred/storeset.h"

#include <algorithm>
#include <cassert>

#include "common/bitutil.h"
#include "inject/faultport.h"

namespace dmdp {

StoreSet::StoreSet(uint32_t ssit_size, uint32_t lfst_size)
    : ssitSize(ssit_size),
      lfstSize(lfst_size),
      ssit(ssit_size, kInvalid),
      lfst(lfst_size, kInvalid)
{
    assert(isPow2(ssit_size));
}

uint32_t
StoreSet::storeRename(uint32_t pc, uint32_t store_tag)
{
    uint32_t ssid = ssit[ssitIndex(pc)];
    if (ssid != kInvalid)
        lfst[ssid % lfstSize] = store_tag;
    return ssid;
}

uint32_t
StoreSet::loadRename(uint32_t pc)
{
    uint32_t ssid = ssit[ssitIndex(pc)];
    uint32_t tag = (ssid == kInvalid) ? kInvalid : lfst[ssid % lfstSize];
    DMDP_FAULT_HOOK(storeSetLoad, tag);
    return tag;
}

void
StoreSet::storeIssued(uint32_t ssid, uint32_t store_tag)
{
    if (ssid == kInvalid)
        return;
    uint32_t &entry = lfst[ssid % lfstSize];
    if (entry == store_tag)
        entry = kInvalid;
}

void
StoreSet::violation(uint32_t load_pc, uint32_t store_pc)
{
    uint32_t &load_set = ssit[ssitIndex(load_pc)];
    uint32_t &store_set = ssit[ssitIndex(store_pc)];
    if (load_set == kInvalid && store_set == kInvalid) {
        load_set = store_set = nextSsid++ % lfstSize;
    } else if (load_set == kInvalid) {
        load_set = store_set;
    } else if (store_set == kInvalid) {
        store_set = load_set;
    } else {
        // Both assigned: merge into the smaller ID (declining-set rule).
        uint32_t winner = std::min(load_set, store_set);
        load_set = store_set = winner;
    }
}

void
StoreSet::clear()
{
    std::fill(ssit.begin(), ssit.end(), kInvalid);
    std::fill(lfst.begin(), lfst.end(), kInvalid);
}

} // namespace dmdp
