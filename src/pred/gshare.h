/**
 * @file
 * Front-end branch prediction: gshare direction predictor, a BTB for
 * taken-branch / indirect targets, and a return address stack.
 */

#ifndef DMDP_PRED_GSHARE_H
#define DMDP_PRED_GSHARE_H

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/stats.h"

namespace dmdp {

/** Gshare two-bit counter direction predictor. */
class Gshare
{
  public:
    explicit Gshare(uint32_t history_bits);

    /** Predict the direction of the branch at @p pc. */
    bool predict(uint32_t pc) const;

    /** Train and shift the actual outcome into the history. */
    void update(uint32_t pc, bool taken);

    /** Current global history (used to index path-sensitive tables). */
    uint32_t history() const { return ghr; }

  private:
    uint32_t index(uint32_t pc) const;

    uint32_t historyBits;
    uint32_t ghr = 0;
    std::vector<uint8_t> counters;
};

/** Branch target buffer, direct mapped on the fetch PC. */
class Btb
{
  public:
    explicit Btb(uint32_t entries);

    /** Predicted target for @p pc, or 0 when no entry matches. */
    uint32_t lookup(uint32_t pc) const;

    void update(uint32_t pc, uint32_t target);

  private:
    struct Entry
    {
        bool valid = false;
        uint32_t tag = 0;
        uint32_t target = 0;
    };

    uint32_t mask;
    std::vector<Entry> table;
};

/** Return address stack for JAL/JR pairs. */
class Ras
{
  public:
    explicit Ras(uint32_t depth = 16) : stack(depth) {}

    void push(uint32_t return_pc);
    uint32_t pop();
    bool empty() const { return count == 0; }

  private:
    std::vector<uint32_t> stack;
    uint32_t top = 0;
    uint32_t count = 0;
};

/**
 * Combined front-end predictor. The timing model compares the
 * prediction against the oracle outcome to decide whether fetch
 * redirects cleanly or pays the misprediction penalty.
 */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const SimConfig &cfg);

    /**
     * Predict a control instruction.
     * @param pc       fetch address
     * @param is_cond  conditional branch?
     * @param is_call  JAL?
     * @param is_ret   JR?
     * @return predicted next PC (pc+4 for predicted not-taken).
     */
    uint32_t predict(uint32_t pc, bool is_cond, bool is_call, bool is_ret);

    /** Train with the actual outcome. */
    void update(uint32_t pc, bool is_cond, bool taken, uint32_t target);

    uint32_t history() const { return gshare.history(); }

    uint64_t lookups() const { return lookups_.value(); }

  private:
    Gshare gshare;
    Btb btb;
    Ras ras;
    Scalar lookups_;
};

} // namespace dmdp

#endif // DMDP_PRED_GSHARE_H
