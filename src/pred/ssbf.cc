#include "pred/ssbf.h"

#include <cassert>

#include "common/bitutil.h"
#include "inject/faultport.h"

namespace dmdp {

Ssbf::Ssbf(const SimConfig &cfg)
    : sets(cfg.ssbfSets),
      ways(cfg.ssbfWays),
      entries(static_cast<size_t>(cfg.ssbfSets) * cfg.ssbfWays),
      fifoHead(cfg.ssbfSets, 0)
{
    assert(isPow2(sets));
}

uint32_t
Ssbf::setOf(uint32_t word_addr) const
{
    // Hash the word address: fold the high bits in so nearby arrays
    // don't collide systematically.
    uint32_t word = word_addr >> 2;
    return (word ^ (word >> 11)) & (sets - 1);
}

uint32_t
Ssbf::tagOf(uint32_t word_addr) const
{
    return (word_addr >> 2) / sets;
}

void
Ssbf::storeRetire(uint32_t word_addr, uint8_t bab, uint64_t ssn)
{
    ++writes_;
    DMDP_FAULT_HOOK(ssbfInsert, ssn);
    uint32_t set = setOf(word_addr);
    Entry &slot = entries[static_cast<size_t>(set) * ways + fifoHead[set]];
    slot.valid = true;
    slot.tag = tagOf(word_addr);
    slot.ssn = ssn;
    slot.bab = bab;
    fifoHead[set] = (fifoHead[set] + 1) % ways;
}

SsbfResult
Ssbf::loadLookup(uint32_t word_addr, uint8_t bab) const
{
    ++reads_;
    uint32_t set = setOf(word_addr);
    uint32_t tag = tagOf(word_addr);
    const Entry *base = &entries[static_cast<size_t>(set) * ways];

    SsbfResult result;
    uint64_t min_ssn = ~0ull;
    bool any_valid = false;
    for (uint32_t way = 0; way < ways; ++way) {
        const Entry &entry = base[way];
        if (!entry.valid)
            continue;
        any_valid = true;
        min_ssn = std::min(min_ssn, entry.ssn);
        if (entry.tag == tag && (entry.bab & bab) != 0) {
            if (!result.matched || entry.ssn > result.ssn) {
                result.matched = true;
                result.ssn = entry.ssn;
                result.storeBab = entry.bab;
            }
        }
    }
    if (!result.matched)
        result.ssn = any_valid ? min_ssn : 0;
    DMDP_FAULT_HOOK(ssbfLookup, result.ssn, result.matched,
                    result.storeBab);
    return result;
}

void
Ssbf::invalidateLine(uint32_t line_addr, uint32_t line_bytes, uint64_t ssn)
{
    uint32_t base = line_addr & ~(line_bytes - 1);
    for (uint32_t offset = 0; offset < line_bytes; offset += 4)
        storeRetire(base + offset, 0xF, ssn);
}

} // namespace dmdp
