/**
 * @file
 * Saturating confidence counter with the two update policies compared in
 * the paper (section IV-E): the balanced policy (+1 / -1, NoSQ) and the
 * biased policy (+1 / divide-by-two, DMDP). The biased policy trades
 * extra predications for fewer costly dependence mispredictions.
 */

#ifndef DMDP_PRED_CONFIDENCE_H
#define DMDP_PRED_CONFIDENCE_H

#include <cstdint>

namespace dmdp {

/** Saturating confidence counter. */
class ConfidenceCounter
{
  public:
    ConfidenceCounter(uint32_t init, uint32_t max)
        : value_(init), max_(max)
    {}

    /** Reward a correct prediction. */
    void
    correct()
    {
        if (value_ < max_)
            ++value_;
    }

    /**
     * Penalize a misprediction.
     * @param biased true = divide by two (DMDP), false = decrement (NoSQ)
     */
    void
    incorrect(bool biased)
    {
        if (biased)
            value_ >>= 1;
        else if (value_ > 0)
            --value_;
    }

    /** Confident when strictly above @p threshold (paper: >63). */
    bool confident(uint32_t threshold) const { return value_ > threshold; }

    uint32_t value() const { return value_; }
    void reset(uint32_t v) { value_ = v > max_ ? max_ : v; }

  private:
    uint32_t value_;
    uint32_t max_;
};

} // namespace dmdp

#endif // DMDP_PRED_CONFIDENCE_H
