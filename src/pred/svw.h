/**
 * @file
 * Store Vulnerability Window re-execution filter (paper section IV-A-a
 * and Table II). Pure policy functions: given what the T-SSBF reports
 * at retire and what the load recorded at execute, decide whether a
 * verification re-execution is required.
 */

#ifndef DMDP_PRED_SVW_H
#define DMDP_PRED_SVW_H

#include <cstdint>

namespace dmdp {

/**
 * Re-execution policy for a load that read its value from the cache
 * (Table II, row 1): the load is vulnerable to any store that committed
 * after it read, i.e., any colliding SSN above its SSN_nvul.
 */
constexpr bool
svwCacheLoadNeedsReexec(uint64_t colliding_ssn, uint64_t ssn_nvul)
{
    return colliding_ssn > ssn_nvul;
}

/**
 * Re-execution policy for a load whose value was forwarded from an
 * in-flight store — by cloaking or by a taken predication arm
 * (Table II, row 2): the actual colliding store must be exactly the
 * predicted one.
 */
constexpr bool
svwForwardedLoadNeedsReexec(uint64_t colliding_ssn, uint64_t predicted_ssn)
{
    return colliding_ssn != predicted_ssn;
}

/**
 * Partial-word coverage check (Fig. 11): forwarding is complete only if
 * the store wrote every byte the load reads.
 */
constexpr bool
babCovers(uint8_t store_bab, uint8_t load_bab)
{
    return (store_bab & load_bab) == load_bab;
}

/** Collision check: any shared byte. */
constexpr bool
babOverlaps(uint8_t store_bab, uint8_t load_bab)
{
    return (store_bab & load_bab) != 0;
}

} // namespace dmdp

#endif // DMDP_PRED_SVW_H
