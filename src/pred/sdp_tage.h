/**
 * @file
 * TAGE-style store distance predictor.
 *
 * The paper's related-work section points out that the TAGE-like
 * instruction distance predictor of Perais & Seznec (HPCA 2016) "could
 * also be tuned as a Store Distance Predictor and adopted to DMDP".
 * This is that tuning: a base table (the classic path-insensitive
 * table) backed by four partially-tagged tables indexed with
 * geometrically increasing branch-history lengths. The longest-history
 * matching table provides the prediction; allocation on a misprediction
 * moves the dependence into a longer-history table, so distances that
 * correlate with deep path context (the bzip2 pathology) become
 * predictable.
 *
 * Select it with SimConfig::sdpKind = SdpKind::Tage and compare with
 * bench/ablation_tage.
 */

#ifndef DMDP_PRED_SDP_TAGE_H
#define DMDP_PRED_SDP_TAGE_H

#include <array>
#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "pred/sdp.h"

namespace dmdp {

/** TAGE-organized store distance predictor. */
class SdpTage
{
  public:
    static constexpr unsigned kNumTables = 4;

    explicit SdpTage(const SimConfig &cfg);

    /** Look up, longest matching history first. */
    SdpPrediction predict(uint32_t pc, uint32_t history);

    /** Train at retire time; same contract as Sdp::update. */
    void update(uint32_t pc, uint32_t history, bool actually_dependent,
                uint32_t actual_distance);

    uint64_t lookups() const { return lookups_.value(); }
    uint64_t allocations() const { return allocations_.value(); }
    uint64_t taggedHits() const { return taggedHits_.value(); }

  private:
    struct Entry
    {
        bool valid = false;
        uint16_t tag = 0;
        uint8_t distance = 0;
        uint8_t useful = 0;             ///< replacement guard (0..3)
        ConfidenceCounter conf{0, 0};
    };

    /** Tagged component geometry. */
    struct Component
    {
        uint32_t historyBits = 0;
        std::vector<Entry> entries;
    };

    uint32_t index(unsigned table, uint32_t pc, uint32_t history) const;
    uint16_t tagOf(unsigned table, uint32_t pc, uint32_t history) const;

    /** The provider component for this access, or -1 for the base. */
    int findProvider(uint32_t pc, uint32_t history, uint32_t *index_out,
                     Entry **entry_out);

    SimConfig cfg;
    Sdp base;                           ///< classic two-table predictor
    std::array<Component, kNumTables> tables;
    uint32_t tableSize;

    Scalar lookups_;
    Scalar allocations_;
    Scalar taggedHits_;
};

} // namespace dmdp

#endif // DMDP_PRED_SDP_TAGE_H
