/**
 * @file
 * Store-Set memory dependence predictor (Chrysos & Emer, ISCA '98) used
 * by the baseline SQ/LQ machine. Two structures: the Store Set ID Table
 * (SSIT), indexed by instruction PC, and the Last Fetched Store Table
 * (LFST), indexed by store-set ID.
 */

#ifndef DMDP_PRED_STORESET_H
#define DMDP_PRED_STORESET_H

#include <cstdint>
#include <vector>

#include "common/config.h"

namespace dmdp {

/** Classic two-table store-set predictor. */
class StoreSet
{
  public:
    static constexpr uint32_t kInvalid = ~0u;

    StoreSet(uint32_t ssit_size, uint32_t lfst_size);

    /**
     * A store is being renamed: returns its store-set ID (or kInvalid)
     * and records it as the set's last fetched store.
     * @param store_tag a unique in-flight tag for this store instance.
     */
    uint32_t storeRename(uint32_t pc, uint32_t store_tag);

    /**
     * A load is being renamed: returns the in-flight tag of the store
     * it should wait for, or kInvalid when it may issue freely.
     */
    uint32_t loadRename(uint32_t pc);

    /** The store with @p store_tag issued: clear its LFST entry. */
    void storeIssued(uint32_t ssid, uint32_t store_tag);

    /** A memory-order violation between these PCs: merge their sets. */
    void violation(uint32_t load_pc, uint32_t store_pc);

    /** Periodic whole-table invalidation keeps sets from saturating. */
    void clear();

  private:
    uint32_t ssitIndex(uint32_t pc) const { return (pc >> 2) & (ssitSize - 1); }

    uint32_t ssitSize;
    uint32_t lfstSize;
    std::vector<uint32_t> ssit;     ///< pc -> store-set id (kInvalid = none)
    std::vector<uint32_t> lfst;     ///< ssid -> in-flight store tag
    uint32_t nextSsid = 0;
};

} // namespace dmdp

#endif // DMDP_PRED_STORESET_H
