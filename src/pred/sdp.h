/**
 * @file
 * Store Distance Predictor (paper section IV-A-d): predicts, for a load,
 * how many stores sit between the load and its colliding store. Two
 * set-associative tables are consulted in parallel: a path-insensitive
 * table indexed by the load PC and a path-sensitive table indexed by
 * PC XOR branch history. The path-sensitive prediction wins when
 * available. Each entry embeds the confidence counter that steers the
 * load to memory cloaking (confident) or delay/predication (not).
 */

#ifndef DMDP_PRED_SDP_H
#define DMDP_PRED_SDP_H

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "pred/confidence.h"

namespace dmdp {

/** Outcome of a store-distance lookup. */
struct SdpPrediction
{
    bool dependent = false;     ///< predicted to collide with a store
    uint32_t distance = 0;      ///< #stores between colliding store and load
    bool confident = false;     ///< above the cloaking threshold
    bool pathSensitive = false; ///< which table produced the prediction
};

/** Two-table store distance predictor with embedded confidence. */
class Sdp
{
  public:
    /** Distances above this cannot be represented (6-bit field). */
    static constexpr uint32_t kMaxDistance = 63;

    explicit Sdp(const SimConfig &cfg);

    /** Look up both tables for the load at @p pc. */
    SdpPrediction predict(uint32_t pc, uint32_t history);

    /**
     * Train at retire time (paper sections IV-A-d, IV-C, IV-E).
     *
     * @param actually_dependent the load truly collided with an
     *        in-flight store (per T-SSBF / verification)
     * @param actual_distance the true store distance when dependent
     *
     * Only called for loads that were predicted dependent or that
     * triggered a re-execution; the silent-store-aware policy widens
     * the second category (section IV-C).
     */
    void update(uint32_t pc, uint32_t history, bool actually_dependent,
                uint32_t actual_distance);

    uint64_t lookups() const { return lookups_.value(); }
    uint64_t allocations() const { return allocations_.value(); }

  private:
    struct Entry
    {
        bool valid = false;
        uint32_t tag = 0;
        uint32_t distance = 0;
        ConfidenceCounter conf{0, 0};
        uint64_t lruStamp = 0;
    };

    /** One of the two prediction tables. */
    struct PredTable
    {
        PredTable(uint32_t entries, uint32_t ways);

        Entry *find(uint32_t index, uint32_t tag);
        Entry *allocate(uint32_t index, uint32_t tag, uint32_t init_conf,
                        uint32_t max_conf);

        uint32_t sets;
        uint32_t ways;
        std::vector<Entry> entries;
        uint64_t stamp = 0;
    };

    uint32_t insensIndex(uint32_t pc) const;
    uint32_t sensIndex(uint32_t pc, uint32_t history) const;

    void updateTable(PredTable &table, uint32_t index, uint32_t tag,
                     bool actually_dependent, uint32_t actual_distance);

    SimConfig cfg;
    PredTable insens;
    PredTable sens;

    Scalar lookups_;
    Scalar allocations_;
};

} // namespace dmdp

#endif // DMDP_PRED_SDP_H
