/**
 * @file
 * Tagged Store Sequence Bloom Filter (T-SSBF, paper section IV-A-b).
 * An N-way set-associative structure indexed by the hashed word address;
 * each set behaves as a FIFO of the last N retired stores mapping there.
 * A retiring load looks up its address: the youngest matching SSN is its
 * colliding store; with no match, the smallest SSN in the set is a
 * conservative lower bound. Byte Access Bits (BAB) stored alongside the
 * SSN detect partial-word collisions (section IV-D).
 */

#ifndef DMDP_PRED_SSBF_H
#define DMDP_PRED_SSBF_H

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/stats.h"

namespace dmdp {

/** Result of a load lookup in the T-SSBF. */
struct SsbfResult
{
    uint64_t ssn = 0;   ///< colliding (or lower-bound) store SSN
    bool matched = false;   ///< an address+BAB match was found
    uint8_t storeBab = 0;   ///< BAB of the matched store (valid if matched)
};

/** The T-SSBF structure. */
class Ssbf
{
  public:
    explicit Ssbf(const SimConfig &cfg);

    /** A store retired: record (hashed word address, BAB, SSN). */
    void storeRetire(uint32_t word_addr, uint8_t bab, uint64_t ssn);

    /**
     * A load is retiring: find its colliding store's SSN.
     * Matching requires equal tags and overlapping BABs; the youngest
     * match wins. With no match the set's smallest SSN is returned
     * (0 for an empty set).
     */
    SsbfResult loadLookup(uint32_t word_addr, uint8_t bab) const;

    /**
     * Multi-core consistency hook (section IV-F): another core
     * invalidated the cache line at @p line_addr. Every word of the
     * line is recorded with full BAB and SSN @p ssn (SSN_commit + 1) so
     * in-flight loads that already executed will re-execute.
     */
    void invalidateLine(uint32_t line_addr, uint32_t line_bytes,
                        uint64_t ssn);

    uint64_t storeWrites() const { return writes_.value(); }
    uint64_t loadReads() const { return reads_.value(); }

  private:
    struct Entry
    {
        bool valid = false;
        uint32_t tag = 0;
        uint64_t ssn = 0;
        uint8_t bab = 0;
    };

    uint32_t setOf(uint32_t word_addr) const;
    uint32_t tagOf(uint32_t word_addr) const;

    uint32_t sets;
    uint32_t ways;
    std::vector<Entry> entries;     ///< sets x ways
    std::vector<uint32_t> fifoHead; ///< per-set next insertion way

    mutable Scalar writes_;
    mutable Scalar reads_;
};

} // namespace dmdp

#endif // DMDP_PRED_SSBF_H
