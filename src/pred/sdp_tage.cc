#include "pred/sdp_tage.h"

#include <cassert>

#include "common/bitutil.h"
#include "inject/faultport.h"

namespace dmdp {

namespace {

/** Geometric history lengths for the tagged components. */
constexpr uint32_t kHistoryLengths[SdpTage::kNumTables] = {4, 8, 16, 24};

} // namespace

SdpTage::SdpTage(const SimConfig &config)
    : cfg(config),
      base(config),
      tableSize(std::max(64u, config.sdpEntries / 4))
{
    assert(isPow2(tableSize));
    for (unsigned t = 0; t < kNumTables; ++t) {
        tables[t].historyBits = kHistoryLengths[t];
        tables[t].entries.resize(tableSize);
    }
}

uint32_t
SdpTage::index(unsigned table, uint32_t pc, uint32_t history) const
{
    uint32_t hist = foldXor(history & ((1ull << tables[table].historyBits)
                                       - 1ull),
                            floorLog2(tableSize));
    return ((pc >> 2) ^ (pc >> 7) ^ hist) & (tableSize - 1);
}

uint16_t
SdpTage::tagOf(unsigned table, uint32_t pc, uint32_t history) const
{
    uint32_t hist = history & ((1ull << tables[table].historyBits) - 1ull);
    return static_cast<uint16_t>(((pc >> 2) ^ (hist * 0x9e37u) ^
                                  (table << 7)) & 0x3ff);
}

int
SdpTage::findProvider(uint32_t pc, uint32_t history, uint32_t *index_out,
                      Entry **entry_out)
{
    for (int t = kNumTables - 1; t >= 0; --t) {
        uint32_t idx = index(static_cast<unsigned>(t), pc, history);
        Entry &entry = tables[t].entries[idx];
        if (entry.valid &&
            entry.tag == tagOf(static_cast<unsigned>(t), pc, history)) {
            *index_out = idx;
            *entry_out = &entry;
            return t;
        }
    }
    return -1;
}

SdpPrediction
SdpTage::predict(uint32_t pc, uint32_t history)
{
    ++lookups_;
    uint32_t idx = 0;
    Entry *entry = nullptr;
    int provider = findProvider(pc, history, &idx, &entry);
    if (provider >= 0) {
        ++taggedHits_;
        SdpPrediction pred;
        pred.dependent = true;
        pred.distance = entry->distance;
        pred.confident = entry->conf.confident(cfg.confidenceThreshold);
        pred.pathSensitive = true;
        DMDP_FAULT_HOOK(sdpPrediction, pred.dependent, pred.distance,
                        pred.confident);
        return pred;
    }
    // The base predictor's own hook fires on the fallback path.
    return base.predict(pc, history);
}

void
SdpTage::update(uint32_t pc, uint32_t history, bool actually_dependent,
                uint32_t actual_distance)
{
    // Judge the base *before* training it, then train it: it is the
    // fallback and must keep learning, but allocation decisions need
    // its at-prediction-time answer.
    SdpPrediction base_pred = base.predict(pc, history);
    base.update(pc, history, actually_dependent, actual_distance);

    uint32_t idx = 0;
    Entry *entry = nullptr;
    int provider = findProvider(pc, history, &idx, &entry);

    bool representable = actually_dependent &&
                         actual_distance <= Sdp::kMaxDistance;

    if (provider >= 0) {
        if (representable && entry->distance == actual_distance) {
            entry->conf.correct();
            if (entry->useful < 3)
                ++entry->useful;
            return;
        }
        // Provider mispredicted.
        entry->conf.incorrect(cfg.biasedConfidence);
        if (entry->useful > 0)
            --entry->useful;
        if (representable)
            entry->distance = static_cast<uint8_t>(actual_distance);
        if (!representable && entry->useful == 0)
            entry->valid = false;
        // Escalate: also try to allocate in a longer-history table so
        // deeper context can disambiguate (TAGE allocation rule).
        if (representable && provider < static_cast<int>(kNumTables) - 1) {
            for (unsigned t = provider + 1; t < kNumTables; ++t) {
                uint32_t nidx = index(t, pc, history);
                Entry &victim = tables[t].entries[nidx];
                if (!victim.valid || victim.useful == 0) {
                    victim.valid = true;
                    victim.tag = tagOf(t, pc, history);
                    victim.distance =
                        static_cast<uint8_t>(actual_distance);
                    victim.useful = 0;
                    victim.conf = ConfidenceCounter(cfg.confidenceInit,
                                                    cfg.confidenceMax);
                    ++allocations_;
                    break;
                }
                if (victim.useful > 0)
                    --victim.useful;
            }
        }
        return;
    }

    // No tagged provider: the base predicted. Allocate a short-history
    // entry when the base got the dependence wrong.
    if (!representable)
        return;
    bool base_correct = base_pred.dependent &&
                        base_pred.distance == actual_distance;
    if (base_correct)
        return;
    for (unsigned t = 0; t < kNumTables; ++t) {
        uint32_t nidx = index(t, pc, history);
        Entry &victim = tables[t].entries[nidx];
        if (!victim.valid || victim.useful == 0) {
            victim.valid = true;
            victim.tag = tagOf(t, pc, history);
            victim.distance = static_cast<uint8_t>(actual_distance);
            victim.useful = 0;
            victim.conf = ConfidenceCounter(cfg.confidenceInit,
                                            cfg.confidenceMax);
            ++allocations_;
            break;
        }
        if (victim.useful > 0)
            --victim.useful;
    }
}

} // namespace dmdp
