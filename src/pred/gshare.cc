#include "pred/gshare.h"

#include <cassert>

#include "common/bitutil.h"

namespace dmdp {

Gshare::Gshare(uint32_t history_bits)
    : historyBits(history_bits),
      counters(1u << history_bits, 2)  // weakly taken
{
    assert(history_bits <= 24);
}

uint32_t
Gshare::index(uint32_t pc) const
{
    return ((pc >> 2) ^ ghr) & ((1u << historyBits) - 1u);
}

bool
Gshare::predict(uint32_t pc) const
{
    return counters[index(pc)] >= 2;
}

void
Gshare::update(uint32_t pc, bool taken)
{
    uint8_t &ctr = counters[index(pc)];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    ghr = ((ghr << 1) | (taken ? 1u : 0u)) & ((1u << historyBits) - 1u);
}

Btb::Btb(uint32_t entries)
    : mask(entries - 1), table(entries)
{
    assert(isPow2(entries));
}

uint32_t
Btb::lookup(uint32_t pc) const
{
    const Entry &entry = table[(pc >> 2) & mask];
    return (entry.valid && entry.tag == pc) ? entry.target : 0;
}

void
Btb::update(uint32_t pc, uint32_t target)
{
    Entry &entry = table[(pc >> 2) & mask];
    entry.valid = true;
    entry.tag = pc;
    entry.target = target;
}

void
Ras::push(uint32_t return_pc)
{
    stack[top] = return_pc;
    top = (top + 1) % stack.size();
    if (count < stack.size())
        ++count;
}

uint32_t
Ras::pop()
{
    if (count == 0)
        return 0;
    top = (top + static_cast<uint32_t>(stack.size()) - 1) %
          static_cast<uint32_t>(stack.size());
    --count;
    return stack[top];
}

BranchPredictor::BranchPredictor(const SimConfig &cfg)
    : gshare(cfg.gshareBits), btb(cfg.btbEntries)
{}

uint32_t
BranchPredictor::predict(uint32_t pc, bool is_cond, bool is_call, bool is_ret)
{
    ++lookups_;
    if (is_ret && !ras.empty())
        return ras.pop();
    if (is_call)
        ras.push(pc + 4);
    if (is_cond && !gshare.predict(pc))
        return pc + 4;
    uint32_t target = btb.lookup(pc);
    return target ? target : pc + 4;
}

void
BranchPredictor::update(uint32_t pc, bool is_cond, bool taken,
                        uint32_t target)
{
    if (is_cond)
        gshare.update(pc, taken);
    if (taken)
        btb.update(pc, target);
}

} // namespace dmdp
