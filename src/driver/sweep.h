/**
 * @file
 * Parallel sweep driver: run a batch of (model, proxy, config) jobs on
 * a thread pool and collect machine-readable results. Every figure and
 * table in the paper is a sweep over the 21 proxies times a handful of
 * configurations; running the jobs concurrently turns an evaluation
 * campaign from minutes into seconds without changing a single number —
 * each job owns its workload RNG (seeded from the proxy name) and its
 * pipeline, so parallel results are bit-identical to serial ones.
 */

#ifndef DMDP_DRIVER_SWEEP_H
#define DMDP_DRIVER_SWEEP_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "coh/directory.h"
#include "common/config.h"
#include "core/simprofile.h"
#include "core/simstats.h"
#include "isa/program.h"

namespace dmdp::driver {

/**
 * One unit of work: simulate one proxy under one configuration, or —
 * when cores > 1 — one multi-core job behind the shared LLC + directory
 * (src/coh/). Multi-core jobs come in two flavors: a disjoint mix (one
 * proxy per core, core-tagged address spaces, directory stays silent)
 * or a shared-memory kernel (workloads/shared_kernels.h). Core count,
 * mix composition and coherence parameters are first-class components
 * of the result identity (see multiCoreConfigDigest), so cached
 * single-core results stay valid and multi-core results can never be
 * confused with them.
 */
struct SweepJob
{
    std::string id;         ///< unique label, e.g. "dmdp/perl/sb=32"
    std::string proxy;      ///< proxy benchmark name (spec_proxies.h)
    bool isInteger = true;  ///< Int/FP suite membership (for geomeans)
    SimConfig cfg;          ///< full machine configuration (every core)
    uint64_t insts = 0;     ///< dynamic instruction budget (per core)

    // Multi-core jobs only (cores > 1). Exactly one of mix (with
    // mix.size() == cores) or sharedKernel must be set.
    uint32_t cores = 1;         ///< simulated cores; 1 = classic job
    std::vector<std::string> mix;   ///< per-core proxy names (disjoint)
    std::string sharedKernel;   ///< shared-memory kernel name
    uint32_t kernelIters = 200; ///< shared-kernel iteration count
    coh::CohParams coh;         ///< coherence fabric parameters
};

/** The outcome of one job: statistics plus run metadata. */
struct JobResult
{
    SweepJob job;
    SimStats stats;
    SimProfile profile;         ///< simulation-speed profile (not stats)
    double wallSeconds = 0;     ///< host wall-clock time for this job
    uint64_t configDigest = 0;  ///< digest of job.cfg (see configDigest())
    bool ok = false;            ///< false if the job threw
    std::string error;          ///< exception message when !ok
    uint32_t attempts = 1;      ///< simulation attempts (retries + 1)
    bool timedOut = false;      ///< reaped by the watchdog (never retried)
    bool resumed = false;       ///< restored from a journal, not re-run
    /**
     * Content digest of the exact workload bytes this result came from:
     * the sealed TraceBuffer digest for trace-replayed jobs, the
     * program-image digest for live runs (see TraceBuffer::digest and
     * programDigest). Emitted as trace_digest; half of the result-cache
     * key. Zero when the workload could not be digested.
     */
    uint64_t traceDigest = 0;
    bool cached = false;        ///< restored from the result cache
    /**
     * Directory/LLC statistics for multi-core jobs (all-zero for
     * cores == 1). stats holds the per-core counters summed across
     * cores with cycles set to the global lockstep round count; the
     * per-core coherence side-channel sums land in profile
     * (cohInvalsReceived / cohReexecs). Like the profile, coh is not
     * part of the cached stat vector: result-cache hits restore stats
     * only, while journal restores carry coh through the JSON document.
     */
    coh::CohStats coh;
};

/**
 * Abstract content-addressed result cache consulted by runReport()
 * before simulating and fed after. Implemented by farm::ResultCache
 * (sharded files under a cache directory); the driver only sees this
 * interface so it never depends on the farm subsystem. Implementations
 * must be safe to call from multiple sweep workers concurrently.
 */
class JobCache
{
  public:
    virtual ~JobCache() = default;

    /**
     * The full cache key: every input that determines the stat vector.
     * Two runs with equal keys are bit-identical by the determinism and
     * replay-equivalence guarantees, so a cached stat vector can be
     * spliced in anywhere.
     */
    struct Key
    {
        uint64_t configDigest = 0;    ///< configDigest() of the run cfg
        uint64_t workloadDigest = 0;  ///< JobResult::traceDigest
        uint64_t insts = 0;           ///< dynamic instruction budget
        uint64_t schemaDigest = 0;    ///< statsSchemaDigest()
    };

    /** Probe; on hit fill @p stats (every counter) and return true. */
    virtual bool lookup(const Key &key, SimStats &stats) = 0;

    /** Record a completed ok result under @p key. */
    virtual void store(const Key &key, const JobResult &result) = 0;

    /**
     * Workload-digest memo: the trace digest for (program, insts,
     * recordCap) is a deterministic function of its inputs, so a warm
     * sweep can learn the digest of a workload's trace without paying
     * for re-recording it. Returns false when unknown.
     */
    virtual bool lookupTraceDigest(uint64_t programDigest, uint64_t insts,
                                   uint64_t recordCap,
                                   uint64_t &traceDigest) = 0;
    virtual void storeTraceDigest(uint64_t programDigest, uint64_t insts,
                                  uint64_t recordCap,
                                  uint64_t traceDigest) = 0;
};

/** Resilience knobs for one sweep (all off by default). */
struct SweepOptions
{
    /**
     * Per-job wall-clock budget in seconds; 0 disables the watchdog.
     * An over-budget job's pipeline is cancelled cooperatively (see
     * Pipeline::cancelToken), reported with timedOut set, and never
     * retried — a deterministic simulation that timed out once would
     * time out again.
     */
    double jobTimeoutSec = 0;

    /**
     * Extra attempts after a thrown (non-timeout) failure. Simulations
     * are deterministic, so retries exist for transient host trouble
     * (OOM kills, filesystem hiccups on workload build) — a retried
     * success is bit-identical to a first-attempt success.
     */
    uint32_t retries = 0;

    /**
     * When non-empty, append each finished job to this JSONL journal
     * (one resultToJson document per line, flushed per job) so an
     * interrupted sweep can be resumed.
     */
    std::string journalPath;

    /**
     * When non-empty, read this journal first and skip every job whose
     * (id, configDigest, insts) matches an ok entry, restoring its
     * recorded result bit-for-bit (the profile is not restored — it
     * describes host speed, not simulated behavior). A missing file is
     * an empty journal, so a kill/resume loop needs no first-run
     * special case. Truncated final lines (a killed sweep mid-write)
     * are ignored. Only newly executed jobs are appended to
     * journalPath.
     */
    std::string resumePath;

    /**
     * Optional content-addressed result cache (non-owning; must outlive
     * the sweep). Probed per job after the resume journal; a hit
     * restores the stat vector bit-for-bit and skips simulation
     * entirely. Every newly computed ok result is stored back. See
     * farm::ResultCache for the on-disk implementation.
     */
    JobCache *cache = nullptr;

    /**
     * Optional live-progress counter (non-owning): while a job's
     * attempt runs, the pipeline adds every retired instruction here
     * via ProgressPort, so another thread (a farm worker's heartbeat
     * loop) can observe forward progress mid-job. Shared across jobs
     * of the sweep; callers sampling it see a monotone total.
     */
    std::atomic<uint64_t> *liveProgress = nullptr;
};

/** A sweep's results plus execution metadata. */
struct SweepReport
{
    std::vector<JobResult> results;
    uint64_t traceFallbacks = 0;    ///< jobs that re-emulated live after
                                    ///< a shared-trace capture failure
    size_t failed = 0;              ///< jobs !ok after all attempts
    size_t timedOut = 0;            ///< subset of failed: watchdog kills
    size_t resumed = 0;             ///< jobs restored from the journal
    uint64_t cacheHits = 0;         ///< jobs restored from the cache
    uint64_t cacheMisses = 0;       ///< cache probes that simulated
    /** Farm mode: jobs completed per worker, coordinator-assigned. */
    std::vector<std::pair<std::string, size_t>> workerJobs;
    /** Farm mode: in-flight dispatches reaped past the liveness
     *  deadline (silent-stall workers cut loose). */
    uint64_t reapedDispatches = 0;
    /** Farm mode: requeue events after a reap or worker death. */
    uint64_t redispatchedJobs = 0;
    /** Farm mode: connections refused at handshake (bad auth token,
     *  protocol/build/schema skew). */
    uint64_t rejectedPeers = 0;
    std::vector<std::string> warnings;  ///< one line per degraded path

    bool ok() const { return failed == 0; }

    /** Hit fraction over all cache probes (0 when none were made). */
    double
    cacheHitRate() const
    {
        uint64_t probes = cacheHits + cacheMisses;
        return probes ? static_cast<double>(cacheHits) / probes : 0.0;
    }
};

/**
 * Stable 64-bit digest of every field of a SimConfig. Two runs with the
 * same digest ran the same machine; emitted with each JobResult so
 * archived JSON/CSV results remain attributable.
 */
uint64_t configDigest(const SimConfig &cfg);

/**
 * Result-identity digest of a multi-core job: configDigest(job.cfg)
 * extended with the core count, the coherence fabric parameters
 * (latencies, LLC geometry, private-mix tagging) and the workload
 * composition (mix proxy names or shared-kernel name + iterations).
 * Only used when job.cores > 1 — single-core jobs keep the plain
 * configDigest, so every cached or journaled single-core result stays
 * bit-for-bit valid.
 */
uint64_t multiCoreConfigDigest(const SweepJob &job);

/**
 * Stable 64-bit digest of a program image: entry point plus every
 * (address, bytes) chunk in address order. The workload digest for
 * live-mode jobs, where no sealed trace exists to digest.
 */
uint64_t programDigest(const Program &prog);

/**
 * Worker count for sweeps: the DMDP_JOBS environment variable if set
 * and positive, else std::thread::hardware_concurrency(), else 1.
 */
unsigned defaultJobCount();

/**
 * Fixed-size thread pool that executes sweep jobs. Results are returned
 * in job order regardless of completion order, and every job is fully
 * independent (own program build, own pipeline, own RNGs), so the
 * statistics are identical for any worker count.
 */
class SweepRunner
{
  public:
    /** Called after each job completes: (result, nDone, nTotal). */
    using Progress =
        std::function<void(const JobResult &, size_t, size_t)>;

    /** @param jobs worker threads; 0 means defaultJobCount(). */
    explicit SweepRunner(unsigned jobs = 0);

    unsigned threadCount() const { return threads_; }

    /**
     * Capture-once / replay-many front end (default on; the
     * DMDP_NO_TRACE_REUSE environment variable or --no-trace-reuse
     * flips the default off). When several jobs share a (proxy, insts)
     * workload — the common case: every figure sweeps all models over
     * the same proxies — the dynamic instruction stream is recorded
     * once into an immutable trace::TraceBuffer and replayed read-only
     * by every job, instead of re-running the functional emulator per
     * job. Stats are bit-identical either way; single-use workloads
     * always run live. If recording itself fails (the recorder runs
     * ahead of the retire budget, so it can reach instructions a live
     * run never would), the affected jobs silently fall back to live
     * emulation; replay errors are reported as job failures.
     */
    void setTraceReuse(bool on) { traceReuse_ = on; }
    bool traceReuse() const { return traceReuse_; }

    /**
     * Test hook, called at the start of every simulation attempt
     * (before any pipeline work) with the job and the 1-based attempt
     * number. A throwing hook makes that attempt fail exactly like a
     * thrown simulation; the failure-path tests use it to script
     * failures deterministically. Not called for resumed jobs.
     */
    using BeforeAttempt =
        std::function<void(const SweepJob &, uint32_t attempt)>;
    void setBeforeAttempt(BeforeAttempt hook)
    {
        beforeAttempt_ = std::move(hook);
    }

    /**
     * Run every job and return results in the same order. The progress
     * callback (optional) is serialized under a mutex.
     */
    std::vector<JobResult> run(const std::vector<SweepJob> &jobs,
                               const Progress &progress = {}) const;

    /**
     * Resilient variant of run(): watchdog timeouts, bounded retries,
     * and journal/resume per @p opt. run() is runReport() with default
     * options, keeping only the results.
     */
    SweepReport runReport(const std::vector<SweepJob> &jobs,
                          const SweepOptions &opt,
                          const Progress &progress = {}) const;

  private:
    unsigned threads_;
    bool traceReuse_;
    BeforeAttempt beforeAttempt_;
};

/**
 * Convenience: build the full (models x proxies) cross product with the
 * per-model paper defaults, @p insts instructions each, and an optional
 * config tweak applied to every job.
 */
std::vector<SweepJob>
crossProduct(const std::vector<LsuModel> &models,
             const std::vector<std::string> &proxies, uint64_t insts,
             const std::function<void(SimConfig &)> &tweak = {});

} // namespace dmdp::driver

#endif // DMDP_DRIVER_SWEEP_H
