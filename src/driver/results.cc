#include "driver/results.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dmdp::driver {

std::vector<std::pair<std::string, double>>
statFields(const SimStats &s)
{
    std::vector<std::pair<std::string, double>> f;
    auto add = [&](const char *name, double v) { f.emplace_back(name, v); };
#define DMDP_STAT(field) add(#field, static_cast<double>(s.field))
    DMDP_STAT(cycles);
    DMDP_STAT(instsRetired);
    DMDP_STAT(uopsRetired);
    DMDP_STAT(loads);
    DMDP_STAT(loadsDirect);
    DMDP_STAT(loadsBypass);
    DMDP_STAT(loadsDelayed);
    DMDP_STAT(loadsPredicated);
    DMDP_STAT(loadExecTimeSum);
    DMDP_STAT(bypassExecTimeSum);
    DMDP_STAT(delayedExecTimeSum);
    DMDP_STAT(lowConfExecTimeSum);
    DMDP_STAT(lowConfLoads);
    DMDP_STAT(instExecTimeSum);
    DMDP_STAT(instExecSamples);
    DMDP_STAT(lcIndepStore);
    DMDP_STAT(lcDiffStore);
    DMDP_STAT(lcCorrect);
    DMDP_STAT(reexecs);
    DMDP_STAT(depMispredicts);
    DMDP_STAT(reexecStallCycles);
    DMDP_STAT(sbFullStallCycles);
    DMDP_STAT(squashes);
    DMDP_STAT(squashedUops);
    DMDP_STAT(branches);
    DMDP_STAT(branchMispredicts);
    DMDP_STAT(fetchedInsts);
    DMDP_STAT(renamedUops);
    DMDP_STAT(iqWrites);
    DMDP_STAT(iqIssues);
    DMDP_STAT(rfReads);
    DMDP_STAT(rfWrites);
    DMDP_STAT(aluOps);
    DMDP_STAT(predicationOps);
    DMDP_STAT(storesCommitted);
    DMDP_STAT(sqSearches);
    DMDP_STAT(sbSearches);
    DMDP_STAT(sdpLookups);
    DMDP_STAT(sdpUpdates);
    DMDP_STAT(ssbfReads);
    DMDP_STAT(ssbfWrites);
    DMDP_STAT(storeSetLookups);
    DMDP_STAT(l1iAccesses);
    DMDP_STAT(l1iMisses);
    DMDP_STAT(l1dAccesses);
    DMDP_STAT(l1dMisses);
    DMDP_STAT(l2Accesses);
    DMDP_STAT(l2Misses);
    DMDP_STAT(dramAccesses);
    DMDP_STAT(tlbMisses);
    DMDP_STAT(remoteInvalidations);
#undef DMDP_STAT
    // Derived paper metrics, for consumers that should not have to
    // re-implement the formulas.
    add("ipc", s.ipc());
    add("mpki", s.mpki());
    add("stallPerKilo", s.stallPerKilo());
    add("avgLoadExecTime", s.avgLoadExecTime());
    add("avgLowConfExecTime", s.avgLowConfExecTime());
    return f;
}

Json
resultToJson(const JobResult &r)
{
    Json j = Json::object();
    j.set("id", r.job.id);
    j.set("proxy", r.job.proxy);
    j.set("model", lsuModelName(r.job.cfg.model));
    j.set("isInteger", r.job.isInteger);
    j.set("insts", Json(static_cast<double>(r.job.insts)));
    j.set("config", r.job.cfg.describe());
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(r.configDigest));
    j.set("configDigest", digest);
    j.set("wallSeconds", r.wallSeconds);
    // Simulator speed, from the pipeline-only wall clock (excludes
    // workload construction): the headline number the speed-smoke CI
    // gate and BENCH_*.json files track.
    j.set("sim_cycles_per_sec", r.profile.cyclesPerSec());
    j.set("ok", r.ok);
    if (!r.ok)
        j.set("error", r.error);
    if (r.profile.enabled) {
        Json prof = Json::object();
        prof.set("wallSeconds", r.profile.wallSeconds);
        prof.set("skippedCycles",
                 Json(static_cast<double>(r.profile.skippedCycles)));
        prof.set("skipEvents",
                 Json(static_cast<double>(r.profile.skipEvents)));
        Json stages = Json::object();
        for (int s = 0; s < SimProfile::kNumStages; ++s)
            stages.set(SimProfile::stageName(s), r.profile.stageSeconds[s]);
        prof.set("stageSeconds", std::move(stages));
        j.set("profile", std::move(prof));
    }
    Json stats = Json::object();
    for (const auto &[name, value] : statFields(r.stats))
        stats.set(name, value);
    j.set("stats", std::move(stats));
    return j;
}

Json
resultsToJson(const std::vector<JobResult> &results)
{
    Json doc = Json::object();
    doc.set("schema", "dmdp-sweep-v1");
    doc.set("jobs", Json(static_cast<double>(results.size())));
    Json arr = Json::array();
    for (const auto &r : results)
        arr.push(resultToJson(r));
    doc.set("results", std::move(arr));
    return doc;
}

std::string
resultsToCsv(const std::vector<JobResult> &results)
{
    std::ostringstream os;
    os << "id,proxy,model,isInteger,insts,configDigest,wallSeconds,"
          "sim_cycles_per_sec";
    // Column set comes from the field list so the header never drifts
    // from the rows.
    SimStats empty;
    for (const auto &[name, value] : statFields(empty)) {
        (void)value;
        os << ',' << name;
    }
    os << '\n';
    for (const auto &r : results) {
        char digest[32];
        std::snprintf(digest, sizeof(digest), "%016llx",
                      static_cast<unsigned long long>(r.configDigest));
        os << r.job.id << ',' << r.job.proxy << ','
           << lsuModelName(r.job.cfg.model) << ','
           << (r.job.isInteger ? 1 : 0) << ',' << r.job.insts << ','
           << digest << ',' << r.wallSeconds << ','
           << r.profile.cyclesPerSec();
        for (const auto &[name, value] : statFields(r.stats)) {
            (void)name;
            char buf[32];
            if (value == static_cast<double>(static_cast<long long>(value)))
                std::snprintf(buf, sizeof(buf), "%lld",
                              static_cast<long long>(value));
            else
                std::snprintf(buf, sizeof(buf), "%.17g", value);
            os << ',' << buf;
        }
        os << '\n';
    }
    return os.str();
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("cannot open for writing: " + path);
    out << text;
    if (!out)
        throw std::runtime_error("write failed: " + path);
}

} // namespace dmdp::driver
