#include "driver/results.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dmdp::driver {

// One authoritative counter list, expanded by both directions of the
// name <-> field mapping (statFields and assignStatField).
#define DMDP_STAT_FIELDS(X)                                              \
    X(cycles)                                                            \
    X(instsRetired)                                                      \
    X(uopsRetired)                                                       \
    X(loads)                                                             \
    X(loadsDirect)                                                       \
    X(loadsBypass)                                                       \
    X(loadsDelayed)                                                      \
    X(loadsPredicated)                                                   \
    X(loadExecTimeSum)                                                   \
    X(bypassExecTimeSum)                                                 \
    X(delayedExecTimeSum)                                                \
    X(lowConfExecTimeSum)                                                \
    X(lowConfLoads)                                                      \
    X(instExecTimeSum)                                                   \
    X(instExecSamples)                                                   \
    X(lcIndepStore)                                                      \
    X(lcDiffStore)                                                       \
    X(lcCorrect)                                                         \
    X(reexecs)                                                           \
    X(depMispredicts)                                                    \
    X(reexecStallCycles)                                                 \
    X(sbFullStallCycles)                                                 \
    X(squashes)                                                          \
    X(squashedUops)                                                      \
    X(branches)                                                          \
    X(branchMispredicts)                                                 \
    X(fetchedInsts)                                                      \
    X(renamedUops)                                                       \
    X(iqWrites)                                                          \
    X(iqIssues)                                                          \
    X(rfReads)                                                           \
    X(rfWrites)                                                          \
    X(aluOps)                                                            \
    X(predicationOps)                                                    \
    X(storesCommitted)                                                   \
    X(sqSearches)                                                        \
    X(sbSearches)                                                        \
    X(sdpLookups)                                                        \
    X(sdpUpdates)                                                        \
    X(ssbfReads)                                                         \
    X(ssbfWrites)                                                        \
    X(storeSetLookups)                                                   \
    X(l1iAccesses)                                                       \
    X(l1iMisses)                                                         \
    X(l1dAccesses)                                                       \
    X(l1dMisses)                                                         \
    X(l2Accesses)                                                        \
    X(l2Misses)                                                          \
    X(dramAccesses)                                                      \
    X(tlbMisses)                                                         \
    X(remoteInvalidations)

std::vector<std::pair<std::string, double>>
statFields(const SimStats &s)
{
    std::vector<std::pair<std::string, double>> f;
    auto add = [&](const char *name, double v) { f.emplace_back(name, v); };
#define DMDP_STAT(field) add(#field, static_cast<double>(s.field));
    DMDP_STAT_FIELDS(DMDP_STAT)
#undef DMDP_STAT
    // Derived paper metrics, for consumers that should not have to
    // re-implement the formulas.
    add("ipc", s.ipc());
    add("mpki", s.mpki());
    add("stallPerKilo", s.stallPerKilo());
    add("avgLoadExecTime", s.avgLoadExecTime());
    add("avgLowConfExecTime", s.avgLowConfExecTime());
    return f;
}

bool
assignStatField(SimStats &s, const std::string &name, double value)
{
#define DMDP_STAT(field)                                                 \
    if (name == #field) {                                                \
        s.field = static_cast<decltype(s.field)>(value);                 \
        return true;                                                     \
    }
    DMDP_STAT_FIELDS(DMDP_STAT)
#undef DMDP_STAT
    return false;
}

uint64_t
statsSchemaDigest()
{
    // FNV-1a over every statFields() name (counters and derived alike),
    // separator-terminated so renames can't collide with concatenation.
    uint64_t h = 0xcbf29ce484222325ull;
    SimStats empty;
    for (const auto &[name, value] : statFields(empty)) {
        (void)value;
        for (char c : name) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ull;
        }
        h ^= 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

// Every SimConfig field, partitioned by JSON representation. The lists
// must stay in sync with configDigest() in sweep.cc: anything hashed
// there must round-trip here, or a farm worker would simulate a
// different machine than the coordinator digested.
#define DMDP_CONFIG_NUM_FIELDS(X)                                        \
    X(fetchWidth) X(issueWidth) X(retireWidth) X(robSize) X(iqSize)      \
    X(numPhysRegs) X(frontEndDepth) X(branchPenalty) X(dramLatency)      \
    X(dramBanks) X(rowBufferHitLatency) X(storeBufferSize)               \
    X(sqSearchLatency) X(storeSetSsitSize) X(storeSetLfstSize)           \
    X(ssbfSets) X(ssbfWays) X(sdpEntries) X(sdpWays) X(sdpHistoryBits)   \
    X(confidenceMax) X(confidenceInit) X(confidenceThreshold)            \
    X(gshareBits) X(btbEntries) X(tlbEntries) X(tlbMissLatency)          \
    X(remoteInvalPerKiloCycle) X(squashPenalty) X(maxInsts)              \
    X(warmupInsts)

#define DMDP_CONFIG_BOOL_FIELDS(X)                                       \
    X(storeCoalescing) X(biasedConfidence) X(silentStoreAwareUpdate)     \
    X(legacyScheduler) X(idleSkip)

#define DMDP_CONFIG_CACHE_FIELDS(X) X(l1i) X(l1d) X(l2)

namespace {

Json
cacheConfigToJson(const CacheConfig &c)
{
    Json j = Json::object();
    j.set("sizeBytes", Json(static_cast<double>(c.sizeBytes)));
    j.set("assoc", Json(static_cast<double>(c.assoc)));
    j.set("lineBytes", Json(static_cast<double>(c.lineBytes)));
    j.set("hitLatency", Json(static_cast<double>(c.hitLatency)));
    return j;
}

void
cacheConfigFromJson(const Json &j, CacheConfig &c)
{
    if (j.has("sizeBytes"))
        c.sizeBytes = static_cast<uint32_t>(j.at("sizeBytes").asNumber());
    if (j.has("assoc"))
        c.assoc = static_cast<uint32_t>(j.at("assoc").asNumber());
    if (j.has("lineBytes"))
        c.lineBytes = static_cast<uint32_t>(j.at("lineBytes").asNumber());
    if (j.has("hitLatency"))
        c.hitLatency = static_cast<uint32_t>(j.at("hitLatency").asNumber());
}

} // namespace

Json
configToJson(const SimConfig &cfg)
{
    Json j = Json::object();
    j.set("model", Json(static_cast<double>(static_cast<int>(cfg.model))));
    j.set("consistency",
          Json(static_cast<double>(static_cast<int>(cfg.consistency))));
    j.set("sdpKind",
          Json(static_cast<double>(static_cast<int>(cfg.sdpKind))));
#define DMDP_CFG(field)                                                  \
    j.set(#field, Json(static_cast<double>(cfg.field)));
    DMDP_CONFIG_NUM_FIELDS(DMDP_CFG)
#undef DMDP_CFG
#define DMDP_CFG(field) j.set(#field, Json(cfg.field));
    DMDP_CONFIG_BOOL_FIELDS(DMDP_CFG)
#undef DMDP_CFG
#define DMDP_CFG(field) j.set(#field, cacheConfigToJson(cfg.field));
    DMDP_CONFIG_CACHE_FIELDS(DMDP_CFG)
#undef DMDP_CFG
    return j;
}

bool
configFromJson(const Json &j, SimConfig &cfg)
{
    if (j.kind() != Json::Kind::Object)
        return false;
    try {
        if (j.has("model"))
            cfg.model =
                static_cast<LsuModel>(static_cast<int>(j.at("model").asNumber()));
        if (j.has("consistency"))
            cfg.consistency = static_cast<Consistency>(
                static_cast<int>(j.at("consistency").asNumber()));
        if (j.has("sdpKind"))
            cfg.sdpKind = static_cast<SdpKind>(
                static_cast<int>(j.at("sdpKind").asNumber()));
#define DMDP_CFG(field)                                                  \
        if (j.has(#field))                                               \
            cfg.field = static_cast<decltype(cfg.field)>(                \
                j.at(#field).asNumber());
        DMDP_CONFIG_NUM_FIELDS(DMDP_CFG)
#undef DMDP_CFG
#define DMDP_CFG(field)                                                  \
        if (j.has(#field))                                               \
            cfg.field = j.at(#field).asBool();
        DMDP_CONFIG_BOOL_FIELDS(DMDP_CFG)
#undef DMDP_CFG
#define DMDP_CFG(field)                                                  \
        if (j.has(#field))                                               \
            cacheConfigFromJson(j.at(#field), cfg.field);
        DMDP_CONFIG_CACHE_FIELDS(DMDP_CFG)
#undef DMDP_CFG
    } catch (const JsonError &) {
        return false;
    }
    return true;
}

Json
resultToJson(const JobResult &r)
{
    Json j = Json::object();
    j.set("id", r.job.id);
    j.set("proxy", r.job.proxy);
    j.set("model", lsuModelName(r.job.cfg.model));
    j.set("isInteger", r.job.isInteger);
    j.set("insts", Json(static_cast<double>(r.job.insts)));
    j.set("cores", Json(static_cast<double>(r.job.cores)));
    if (r.job.cores > 1) {
        if (!r.job.mix.empty()) {
            Json mix = Json::array();
            for (const std::string &name : r.job.mix)
                mix.push(Json(name));
            j.set("mix", std::move(mix));
        }
        if (!r.job.sharedKernel.empty()) {
            j.set("kernel", r.job.sharedKernel);
            j.set("kernel_iters",
                  Json(static_cast<double>(r.job.kernelIters)));
        }
        // Directory/LLC totals plus the cross-core sums of the per-core
        // coherence side-channel. Like the profile object these stay
        // outside "stats" (and the schema digest): they describe the
        // fabric around the cores, and single-core documents must not
        // change shape. Restored on journal resume; zero on cache hits.
        Json coh = Json::object();
        auto u64 = [](uint64_t v) {
            return Json(static_cast<double>(v));
        };
        coh.set("llc_hits", u64(r.coh.llcHits));
        coh.set("llc_misses", u64(r.coh.llcMisses));
        coh.set("dram_accesses", u64(r.coh.dramAccesses));
        coh.set("invals_sent", u64(r.coh.invalidationsSent));
        coh.set("invals_delivered", u64(r.coh.invalidationsDelivered));
        coh.set("invals_dropped", u64(r.coh.invalidationsDropped));
        coh.set("downgrades", u64(r.coh.downgrades));
        coh.set("upgrades", u64(r.coh.upgrades));
        coh.set("invals_received", u64(r.profile.cohInvalsReceived));
        coh.set("reexecs", u64(r.profile.cohReexecs));
        j.set("coh", std::move(coh));
    }
    j.set("config", r.job.cfg.describe());
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(r.configDigest));
    j.set("configDigest", digest);
    // Workload content digest: sealed-trace bytes for replayed jobs,
    // program image for live runs. Any archived result is attributable
    // to its exact workload bytes through this.
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(r.traceDigest));
    j.set("trace_digest", digest);
    j.set("cached", r.cached);
    j.set("wallSeconds", r.wallSeconds);
    // Simulator speed, from the pipeline-only wall clock (excludes
    // workload construction): the headline number the speed-smoke CI
    // gate and BENCH_*.json files track. The headline rate counts only
    // cycles the scheduler actually stepped; the raw rate includes
    // idle-skipped cycles (simulated time per wall time) and is not
    // comparable across configs with different skip behavior.
    j.set("sim_cycles_per_sec", r.profile.steppedCyclesPerSec());
    j.set("sim_cycles_per_sec_raw", r.profile.cyclesPerSec());
    j.set("ok", r.ok);
    j.set("attempts", Json(static_cast<double>(r.attempts)));
    j.set("timed_out", r.timedOut);
    if (!r.ok)
        j.set("error", r.error);
    if (r.profile.enabled) {
        Json prof = Json::object();
        prof.set("wallSeconds", r.profile.wallSeconds);
        prof.set("skippedCycles",
                 Json(static_cast<double>(r.profile.skippedCycles)));
        prof.set("skipEvents",
                 Json(static_cast<double>(r.profile.skipEvents)));
        Json stages = Json::object();
        for (int s = 0; s < SimProfile::kNumStages; ++s)
            stages.set(SimProfile::stageName(s), r.profile.stageSeconds[s]);
        prof.set("stageSeconds", std::move(stages));
        j.set("profile", std::move(prof));
    }
    // Address-indexed memory path effectiveness (ARCHITECTURE.md §13).
    // Always emitted (the counters are collected on every run); like
    // the profile object these describe the simulator, not the modeled
    // machine, so they live outside the stats object and the schema
    // digest. Cache hits and journal restores report zeros.
    {
        Json mi = Json::object();
        auto u64 = [](uint64_t v) {
            return Json(static_cast<double>(v));
        };
        mi.set("lsq_search_probes", u64(r.profile.lsqSearchProbes));
        mi.set("lsq_search_filtered", u64(r.profile.lsqSearchFiltered));
        mi.set("lsq_search_hits", u64(r.profile.lsqSearchHits));
        mi.set("lsq_viol_probes", u64(r.profile.lsqViolProbes));
        mi.set("lsq_viol_filtered", u64(r.profile.lsqViolFiltered));
        mi.set("lsq_viol_hits", u64(r.profile.lsqViolHits));
        mi.set("sb_forward_probes", u64(r.profile.sbForwardProbes));
        mi.set("sb_forward_filtered", u64(r.profile.sbForwardFiltered));
        mi.set("sb_forward_hits", u64(r.profile.sbForwardHits));
        j.set("memindex", std::move(mi));
    }
    Json stats = Json::object();
    for (const auto &[name, value] : statFields(r.stats))
        stats.set(name, value);
    j.set("stats", std::move(stats));
    return j;
}

bool
resultFromJson(const Json &j, JobResult &out)
{
    if (!j.has("id") || !j.has("stats") || !j.has("ok"))
        return false;
    out.job.id = j.at("id").asString();
    if (j.has("proxy"))
        out.job.proxy = j.at("proxy").asString();
    if (j.has("isInteger"))
        out.job.isInteger = j.at("isInteger").asBool();
    if (j.has("insts"))
        out.job.insts = static_cast<uint64_t>(j.at("insts").asNumber());
    if (j.has("cores"))
        out.job.cores = static_cast<uint32_t>(j.at("cores").asNumber());
    if (j.has("mix")) {
        const Json &mix = j.at("mix");
        for (size_t i = 0; i < mix.size(); ++i)
            out.job.mix.push_back(mix.at(i).asString());
    }
    if (j.has("kernel"))
        out.job.sharedKernel = j.at("kernel").asString();
    if (j.has("kernel_iters"))
        out.job.kernelIters =
            static_cast<uint32_t>(j.at("kernel_iters").asNumber());
    if (j.has("coh")) {
        const Json &coh = j.at("coh");
        auto u64 = [&coh](const char *key, uint64_t &field) {
            if (coh.has(key))
                field = static_cast<uint64_t>(coh.at(key).asNumber());
        };
        u64("llc_hits", out.coh.llcHits);
        u64("llc_misses", out.coh.llcMisses);
        u64("dram_accesses", out.coh.dramAccesses);
        u64("invals_sent", out.coh.invalidationsSent);
        u64("invals_delivered", out.coh.invalidationsDelivered);
        u64("invals_dropped", out.coh.invalidationsDropped);
        u64("downgrades", out.coh.downgrades);
        u64("upgrades", out.coh.upgrades);
        u64("invals_received", out.profile.cohInvalsReceived);
        u64("reexecs", out.profile.cohReexecs);
    }
    if (j.has("configDigest"))
        out.configDigest = std::strtoull(
            j.at("configDigest").asString().c_str(), nullptr, 16);
    if (j.has("trace_digest"))
        out.traceDigest = std::strtoull(
            j.at("trace_digest").asString().c_str(), nullptr, 16);
    if (j.has("cached"))
        out.cached = j.at("cached").asBool();
    if (j.has("wallSeconds"))
        out.wallSeconds = j.at("wallSeconds").asNumber();
    out.ok = j.at("ok").asBool();
    if (j.has("attempts"))
        out.attempts =
            static_cast<uint32_t>(j.at("attempts").asNumber());
    if (j.has("timed_out"))
        out.timedOut = j.at("timed_out").asBool();
    if (j.has("error"))
        out.error = j.at("error").asString();
    const Json &stats = j.at("stats");
    for (const auto &[name, value] : stats.items())
        assignStatField(out.stats, name, value.asNumber());
    return true;
}

Json
resultsToJson(const std::vector<JobResult> &results)
{
    Json doc = Json::object();
    doc.set("schema", "dmdp-sweep-v1");
    doc.set("jobs", Json(static_cast<double>(results.size())));
    size_t failed = 0, timed_out = 0;
    for (const auto &r : results) {
        failed += !r.ok;
        timed_out += r.timedOut;
    }
    doc.set("failed", Json(static_cast<double>(failed)));
    doc.set("timed_out", Json(static_cast<double>(timed_out)));
    Json arr = Json::array();
    for (const auto &r : results)
        arr.push(resultToJson(r));
    doc.set("results", std::move(arr));
    return doc;
}

Json
reportToJson(const SweepReport &report)
{
    Json doc = resultsToJson(report.results);
    doc.set("resumed", Json(static_cast<double>(report.resumed)));
    doc.set("trace_fallbacks",
            Json(static_cast<double>(report.traceFallbacks)));
    doc.set("cache_hits", Json(static_cast<double>(report.cacheHits)));
    doc.set("cache_misses",
            Json(static_cast<double>(report.cacheMisses)));
    doc.set("cache_hit_rate", report.cacheHitRate());
    if (!report.workerJobs.empty()) {
        Json workers = Json::object();
        for (const auto &[name, count] : report.workerJobs)
            workers.set(name, Json(static_cast<double>(count)));
        doc.set("workers", std::move(workers));
    }
    if (!report.warnings.empty()) {
        Json warns = Json::array();
        for (const std::string &w : report.warnings)
            warns.push(Json(w));
        doc.set("warnings", std::move(warns));
    }
    return doc;
}

namespace {

/**
 * RFC-4180 quoting for fields that may carry delimiters. The trigger
 * set must include '\r': exception messages can embed bare carriage
 * returns (e.g. strerror text on some platforms), and an unquoted CR
 * splits the record for any reader that treats CR or CRLF as a row
 * terminator.
 */
std::string
csvQuote(const std::string &s)
{
    if (s.find_first_of(",\"\r\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::vector<std::vector<std::string>>
csvParse(const std::string &text)
{
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> row;
    std::string field;
    bool inQuotes = false;
    bool fieldStarted = false;  ///< row has at least one field
    for (size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (inQuotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field += '"';
                    ++i;    // escaped quote
                } else {
                    inQuotes = false;
                }
            } else {
                field += c; // delimiters are literal inside quotes
            }
            continue;
        }
        switch (c) {
          case '"':
            inQuotes = true;
            fieldStarted = true;
            break;
          case ',':
            row.push_back(std::move(field));
            field.clear();
            fieldStarted = true;
            break;
          case '\r':
            if (i + 1 < text.size() && text[i + 1] == '\n')
                ++i;    // CRLF row terminator
            [[fallthrough]];
          case '\n':
            row.push_back(std::move(field));
            field.clear();
            rows.push_back(std::move(row));
            row.clear();
            fieldStarted = false;
            break;
          default:
            field += c;
            fieldStarted = true;
            break;
        }
    }
    // Final row without a trailing newline.
    if (fieldStarted || !field.empty() || !row.empty()) {
        row.push_back(std::move(field));
        rows.push_back(std::move(row));
    }
    return rows;
}

std::string
resultsToCsv(const std::vector<JobResult> &results)
{
    std::ostringstream os;
    os << "id,proxy,model,isInteger,insts,cores,mix,kernel,"
          "coh_invals_sent,coh_invals_delivered,coh_invals_dropped,"
          "coh_downgrades,coh_upgrades,coh_llc_hits,coh_llc_misses,"
          "coh_dram_accesses,coh_invals_received,coh_reexecs,"
          "configDigest,trace_digest,"
          "cached,wallSeconds,sim_cycles_per_sec,sim_cycles_per_sec_raw,"
          "lsq_search_probes,lsq_search_filtered,lsq_search_hits,"
          "lsq_viol_probes,lsq_viol_filtered,lsq_viol_hits,"
          "sb_forward_probes,sb_forward_filtered,sb_forward_hits,"
          "ok,attempts,timed_out,error";
    // Column set comes from the field list so the header never drifts
    // from the rows.
    SimStats empty;
    for (const auto &[name, value] : statFields(empty)) {
        (void)value;
        os << ',' << name;
    }
    os << '\n';
    for (const auto &r : results) {
        char digest[32];
        char wdigest[32];
        std::snprintf(digest, sizeof(digest), "%016llx",
                      static_cast<unsigned long long>(r.configDigest));
        std::snprintf(wdigest, sizeof(wdigest), "%016llx",
                      static_cast<unsigned long long>(r.traceDigest));
        // id and proxy are caller-supplied strings (sweep files, CLI
        // flags), so they get the same quoting as error messages.
        std::string mixJoined;
        for (const std::string &name : r.job.mix) {
            if (!mixJoined.empty())
                mixJoined += '+';
            mixJoined += name;
        }
        os << csvQuote(r.job.id) << ',' << csvQuote(r.job.proxy) << ','
           << lsuModelName(r.job.cfg.model) << ','
           << (r.job.isInteger ? 1 : 0) << ',' << r.job.insts << ','
           << r.job.cores << ',' << csvQuote(mixJoined) << ','
           << csvQuote(r.job.sharedKernel) << ','
           << r.coh.invalidationsSent << ','
           << r.coh.invalidationsDelivered << ','
           << r.coh.invalidationsDropped << ','
           << r.coh.downgrades << ',' << r.coh.upgrades << ','
           << r.coh.llcHits << ',' << r.coh.llcMisses << ','
           << r.coh.dramAccesses << ','
           << r.profile.cohInvalsReceived << ','
           << r.profile.cohReexecs << ','
           << digest << ',' << wdigest << ',' << (r.cached ? 1 : 0)
           << ',' << r.wallSeconds << ','
           << r.profile.steppedCyclesPerSec() << ','
           << r.profile.cyclesPerSec() << ','
           << r.profile.lsqSearchProbes << ','
           << r.profile.lsqSearchFiltered << ','
           << r.profile.lsqSearchHits << ','
           << r.profile.lsqViolProbes << ','
           << r.profile.lsqViolFiltered << ','
           << r.profile.lsqViolHits << ','
           << r.profile.sbForwardProbes << ','
           << r.profile.sbForwardFiltered << ','
           << r.profile.sbForwardHits << ','
           << (r.ok ? 1 : 0) << ','
           << r.attempts << ',' << (r.timedOut ? 1 : 0) << ','
           << csvQuote(r.error);
        for (const auto &[name, value] : statFields(r.stats)) {
            (void)name;
            char buf[32];
            if (value == static_cast<double>(static_cast<long long>(value)))
                std::snprintf(buf, sizeof(buf), "%lld",
                              static_cast<long long>(value));
            else
                std::snprintf(buf, sizeof(buf), "%.17g", value);
            os << ',' << buf;
        }
        os << '\n';
    }
    return os.str();
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("cannot open for writing: " + path);
    out << text;
    if (!out)
        throw std::runtime_error("write failed: " + path);
}

} // namespace dmdp::driver
