#include "driver/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace dmdp::driver {

// ----------------------------------------------------------------- dump

namespace {

void
dumpString(std::ostringstream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
dumpNumber(std::ostringstream &os, double d)
{
    if (!std::isfinite(d)) {
        os << "null";   // JSON has no Inf/NaN
        return;
    }
    // Integers (the common case for counters) print exactly; anything
    // else uses %.17g, which round-trips IEEE doubles.
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", d);
        os << buf;
    } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        os << buf;
    }
}

void
dumpValue(std::ostringstream &os, const Json &j, int indent, int depth)
{
    auto newline = [&](int d) {
        if (indent > 0) {
            os << '\n';
            for (int i = 0; i < indent * d; ++i)
                os << ' ';
        }
    };
    switch (j.kind()) {
      case Json::Kind::Null: os << "null"; break;
      case Json::Kind::Bool: os << (j.asBool() ? "true" : "false"); break;
      case Json::Kind::Number: dumpNumber(os, j.asNumber()); break;
      case Json::Kind::String: dumpString(os, j.asString()); break;
      case Json::Kind::Array: {
        os << '[';
        for (size_t i = 0; i < j.size(); ++i) {
            if (i)
                os << ',';
            newline(depth + 1);
            dumpValue(os, j.at(i), indent, depth + 1);
        }
        if (j.size())
            newline(depth);
        os << ']';
        break;
      }
      case Json::Kind::Object: {
        os << '{';
        bool first = true;
        for (const auto &[key, value] : j.items()) {
            if (!first)
                os << ',';
            first = false;
            newline(depth + 1);
            dumpString(os, key);
            os << (indent > 0 ? ": " : ":");
            dumpValue(os, value, indent, depth + 1);
        }
        if (!first)
            newline(depth);
        os << '}';
        break;
      }
    }
}

} // namespace

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    dumpValue(os, *this, indent, 0);
    return os.str();
}

// ---------------------------------------------------------------- parse

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    document()
    {
        Json j = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return j;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw JsonError("json parse error at offset " +
                        std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expect(char c)
    {
        if (!consume(c))
            fail(std::string("expected '") + c + "'");
    }

    bool
    literal(const char *word)
    {
        size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json
    value()
    {
        skipWs();
        char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return Json(string());
        if (literal("true"))
            return Json(true);
        if (literal("false"))
            return Json(false);
        if (literal("null"))
            return Json();
        return number();
    }

    Json
    object()
    {
        expect('{');
        Json j = Json::object();
        skipWs();
        if (consume('}'))
            return j;
        for (;;) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            j.set(key, value());
            skipWs();
            if (consume('}'))
                return j;
            expect(',');
        }
    }

    Json
    array()
    {
        expect('[');
        Json j = Json::array();
        skipWs();
        if (consume(']'))
            return j;
        for (;;) {
            j.push(value());
            skipWs();
            if (consume(']'))
                return j;
            expect(',');
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') code |= h - '0';
                    else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
                    else fail("bad \\u escape digit");
                }
                // Our emitter only escapes control characters; decode
                // the BMP code point as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    Json
    number()
    {
        size_t start = pos_;
        consume('-');
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        char *end = nullptr;
        std::string tok = text_.substr(start, pos_ - start);
        double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            fail("malformed number");
        return Json(d);
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace dmdp::driver
