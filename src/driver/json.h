/**
 * @file
 * Minimal JSON document model, writer and recursive-descent parser —
 * just enough to emit sweep results and read them back (round-trip
 * tested). No external dependency: the container bakes in nothing
 * beyond the standard library.
 */

#ifndef DMDP_DRIVER_JSON_H
#define DMDP_DRIVER_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace dmdp::driver {

/** Thrown by Json::parse on malformed input. */
class JsonError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** A JSON value: null, bool, number, string, array or object. */
class Json
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Json() = default;
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(double d) : kind_(Kind::Number), num_(d) {}
    Json(uint64_t u) : kind_(Kind::Number), num_(static_cast<double>(u)) {}
    Json(int i) : kind_(Kind::Number), num_(i) {}
    Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Json(const char *s) : kind_(Kind::String), str_(s) {}

    static Json array() { Json j; j.kind_ = Kind::Array; return j; }
    static Json object() { Json j; j.kind_ = Kind::Object; return j; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }

    bool asBool() const { expect(Kind::Bool); return bool_; }
    double asNumber() const { expect(Kind::Number); return num_; }
    const std::string &asString() const { expect(Kind::String); return str_; }

    /** Array access. */
    void push(Json v) { expect(Kind::Array); arr_.push_back(std::move(v)); }
    size_t size() const { expect(Kind::Array); return arr_.size(); }
    const Json &at(size_t i) const { expect(Kind::Array); return arr_.at(i); }

    /** Object access. */
    void set(const std::string &key, Json v)
    {
        expect(Kind::Object);
        obj_[key] = std::move(v);
    }
    bool has(const std::string &key) const
    {
        expect(Kind::Object);
        return obj_.count(key) != 0;
    }
    const Json &at(const std::string &key) const
    {
        expect(Kind::Object);
        auto it = obj_.find(key);
        if (it == obj_.end())
            throw JsonError("missing key: " + key);
        return it->second;
    }
    const std::map<std::string, Json> &items() const
    {
        expect(Kind::Object);
        return obj_;
    }

    /** Serialize. Numbers use enough digits to round-trip doubles. */
    std::string dump(int indent = 0) const;

    /** Parse a complete document (throws JsonError on any trailing junk). */
    static Json parse(const std::string &text);

  private:
    void
    expect(Kind k) const
    {
        if (kind_ != k)
            throw JsonError("json: wrong value kind");
    }

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<Json> arr_;
    std::map<std::string, Json> obj_;
};

} // namespace dmdp::driver

#endif // DMDP_DRIVER_JSON_H
