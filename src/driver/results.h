/**
 * @file
 * Machine-readable emitters for sweep results: one JSON document or one
 * CSV table per sweep, carrying every SimStats counter plus the derived
 * paper metrics (IPC, MPKI, stall cycles per 1k) and run metadata
 * (config description, digest, wall time). BENCH_*.json trajectories
 * and external plotting scripts consume these directly.
 */

#ifndef DMDP_DRIVER_RESULTS_H
#define DMDP_DRIVER_RESULTS_H

#include <string>
#include <utility>
#include <vector>

#include "core/simstats.h"
#include "driver/json.h"
#include "driver/sweep.h"

namespace dmdp::driver {

/**
 * Every statistic of a run as (name, value) pairs: all SimStats
 * counters plus the derived metrics. One authoritative list shared by
 * the JSON emitter, the CSV emitter and the determinism tests.
 */
std::vector<std::pair<std::string, double>>
statFields(const SimStats &stats);

/** One result as a JSON object (stats nested under "stats"). */
Json resultToJson(const JobResult &result);

/**
 * A whole sweep as a JSON document:
 * {"schema": "dmdp-sweep-v1", "jobs": N, "results": [...]}.
 */
Json resultsToJson(const std::vector<JobResult> &results);

/** A whole sweep as CSV with a header row (columns match statFields). */
std::string resultsToCsv(const std::vector<JobResult> &results);

/** Write @p text to @p path (throws std::runtime_error on failure). */
void writeTextFile(const std::string &path, const std::string &text);

} // namespace dmdp::driver

#endif // DMDP_DRIVER_RESULTS_H
