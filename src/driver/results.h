/**
 * @file
 * Machine-readable emitters for sweep results: one JSON document or one
 * CSV table per sweep, carrying every SimStats counter plus the derived
 * paper metrics (IPC, MPKI, stall cycles per 1k) and run metadata
 * (config description, digest, wall time). BENCH_*.json trajectories
 * and external plotting scripts consume these directly.
 */

#ifndef DMDP_DRIVER_RESULTS_H
#define DMDP_DRIVER_RESULTS_H

#include <string>
#include <utility>
#include <vector>

#include "core/simstats.h"
#include "driver/json.h"
#include "driver/sweep.h"

namespace dmdp::driver {

/**
 * Every statistic of a run as (name, value) pairs: all SimStats
 * counters plus the derived metrics. One authoritative list shared by
 * the JSON emitter, the CSV emitter and the determinism tests.
 */
std::vector<std::pair<std::string, double>>
statFields(const SimStats &stats);

/**
 * Set one SimStats counter by its statFields() name. Returns false for
 * unknown names (including the derived metrics, which are recomputed,
 * not stored). The inverse of statFields(); the sweep journal uses it
 * to restore results on --resume.
 */
bool assignStatField(SimStats &stats, const std::string &name,
                     double value);

/**
 * Stable 64-bit digest of the statFields() name list. Changes whenever
 * a counter is added, removed or renamed — the stats-schema component
 * of the result-cache key, so stale cache entries recorded by an older
 * binary can never be restored into a mismatched SimStats.
 */
uint64_t statsSchemaDigest();

/**
 * Full SimConfig as a JSON object, bit-exact through configFromJson:
 * the round trip preserves configDigest(). The farm protocol ships job
 * configurations this way; configDigest alone names a config but cannot
 * reconstruct it.
 */
Json configToJson(const SimConfig &cfg);

/**
 * Inverse of configToJson. Missing keys keep their default values (so
 * documents from older binaries still parse); returns false only on a
 * structurally wrong document. Callers that need bit-exactness compare
 * configDigest() afterwards.
 */
bool configFromJson(const Json &j, SimConfig &cfg);

/** One result as a JSON object (stats nested under "stats"). */
Json resultToJson(const JobResult &result);

/**
 * Rebuild a JobResult from resultToJson() output (a journal line).
 * Restores id/proxy/insts/digest, the ok/error/attempts/timed_out
 * metadata, wall time, and every SimStats counter; the profile and the
 * full SimConfig are not representable in the document and stay
 * default. Returns false if required fields are missing.
 */
bool resultFromJson(const Json &j, JobResult &out);

/**
 * A whole sweep as a JSON document:
 * {"schema": "dmdp-sweep-v1", "jobs": N, "failed": N, "timed_out": N,
 *  "results": [...]}.
 */
Json resultsToJson(const std::vector<JobResult> &results);

/**
 * resultsToJson() plus the sweep-level resilience metadata: resumed
 * job count, trace-capture fallbacks, and any degradation warnings.
 */
Json reportToJson(const SweepReport &report);

/** A whole sweep as CSV with a header row (columns match statFields). */
std::string resultsToCsv(const std::vector<JobResult> &results);

/**
 * RFC-4180 parser: rows of fields, the exact inverse of the quoting in
 * resultsToCsv(). Handles quoted fields containing commas, doubled
 * quotes, CR, LF and CRLF; accepts LF, CRLF or CR row terminators and
 * a missing final newline. The round-trip tests drive the emitter's
 * adversarial strings through this.
 */
std::vector<std::vector<std::string>> csvParse(const std::string &text);

/** Write @p text to @p path (throws std::runtime_error on failure). */
void writeTextFile(const std::string &path, const std::string &text);

} // namespace dmdp::driver

#endif // DMDP_DRIVER_RESULTS_H
