#include "driver/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "sim/simulator.h"
#include "trace/tracerecorder.h"
#include "workloads/spec_proxies.h"

namespace dmdp::driver {

namespace {

/** FNV-1a over the raw bytes of one value. */
template <typename T>
void
hashField(uint64_t &h, const T &v)
{
    const auto *p = reinterpret_cast<const unsigned char *>(&v);
    for (size_t i = 0; i < sizeof(T); ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
}

void
hashCache(uint64_t &h, const CacheConfig &c)
{
    hashField(h, c.sizeBytes);
    hashField(h, c.assoc);
    hashField(h, c.lineBytes);
    hashField(h, c.hitLatency);
}

} // namespace

uint64_t
configDigest(const SimConfig &cfg)
{
    uint64_t h = 0xcbf29ce484222325ull;
    hashField(h, cfg.model);
    hashField(h, cfg.consistency);
    hashField(h, cfg.fetchWidth);
    hashField(h, cfg.issueWidth);
    hashField(h, cfg.retireWidth);
    hashField(h, cfg.robSize);
    hashField(h, cfg.iqSize);
    hashField(h, cfg.numPhysRegs);
    hashField(h, cfg.frontEndDepth);
    hashField(h, cfg.branchPenalty);
    hashCache(h, cfg.l1i);
    hashCache(h, cfg.l1d);
    hashCache(h, cfg.l2);
    hashField(h, cfg.dramLatency);
    hashField(h, cfg.dramBanks);
    hashField(h, cfg.rowBufferHitLatency);
    hashField(h, cfg.storeBufferSize);
    hashField(h, cfg.storeCoalescing);
    hashField(h, cfg.sqSearchLatency);
    hashField(h, cfg.storeSetSsitSize);
    hashField(h, cfg.storeSetLfstSize);
    hashField(h, cfg.ssbfSets);
    hashField(h, cfg.ssbfWays);
    hashField(h, cfg.sdpEntries);
    hashField(h, cfg.sdpWays);
    hashField(h, cfg.sdpHistoryBits);
    hashField(h, cfg.confidenceMax);
    hashField(h, cfg.confidenceInit);
    hashField(h, cfg.confidenceThreshold);
    hashField(h, cfg.biasedConfidence);
    hashField(h, cfg.silentStoreAwareUpdate);
    hashField(h, cfg.sdpKind);
    hashField(h, cfg.gshareBits);
    hashField(h, cfg.btbEntries);
    hashField(h, cfg.tlbEntries);
    hashField(h, cfg.tlbMissLatency);
    hashField(h, cfg.remoteInvalPerKiloCycle);
    hashField(h, cfg.squashPenalty);
    hashField(h, cfg.maxInsts);
    hashField(h, cfg.warmupInsts);
    return h;
}

unsigned
defaultJobCount()
{
    if (const char *env = std::getenv("DMDP_JOBS")) {
        unsigned long v = std::strtoul(env, nullptr, 0);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

SweepRunner::SweepRunner(unsigned jobs)
    : threads_(jobs ? jobs : defaultJobCount()),
      traceReuse_(std::getenv("DMDP_NO_TRACE_REUSE") == nullptr)
{}

namespace {

/**
 * Shared state for one (proxy, insts) workload: the built program and
 * its recorded trace. The first worker that needs them builds/records
 * under the mutex; everyone else replays the sealed, immutable buffer
 * read-only against the same read-only program image.
 */
struct TraceSlot
{
    std::mutex m;
    uint64_t recordCap = 0;
    std::shared_ptr<const Program> prog;
    std::shared_ptr<const trace::TraceBuffer> trace;
    bool failed = false;    ///< recording threw: fall back to live
};

std::string
workloadKey(const SweepJob &job)
{
    return job.proxy + '\0' + std::to_string(job.insts);
}

} // namespace

std::vector<JobResult>
SweepRunner::run(const std::vector<SweepJob> &jobs,
                 const Progress &progress) const
{
    std::vector<JobResult> results(jobs.size());
    std::atomic<size_t> nextJob{0};
    std::atomic<size_t> nDone{0};
    std::mutex progressMutex;

    // One slot per workload shared by >1 jobs. Single-use workloads run
    // live: recording is the same emulation work plus encoding, so a
    // trace only pays for itself on the second use. The record cap must
    // cover the deepest fetch-ahead of any sharing config, hence the
    // max ROB size per group.
    std::unordered_map<std::string, std::unique_ptr<TraceSlot>> slots;
    if (traceReuse_) {
        struct Uses
        {
            size_t n = 0;
            uint32_t maxRob = 0;
            uint64_t insts = 0;
        };
        std::unordered_map<std::string, Uses> uses;
        for (const SweepJob &job : jobs) {
            Uses &u = uses[workloadKey(job)];
            ++u.n;
            u.maxRob = std::max(u.maxRob, job.cfg.robSize);
            u.insts = job.insts;
        }
        for (const auto &[key, u] : uses) {
            if (u.n < 2)
                continue;
            auto slot = std::make_unique<TraceSlot>();
            slot->recordCap = proxyRecordCap(u.insts, u.maxRob);
            slots.emplace(key, std::move(slot));
        }
    }

    auto worker = [&]() {
        for (;;) {
            size_t i = nextJob.fetch_add(1);
            if (i >= jobs.size())
                return;
            JobResult &r = results[i];
            r.job = jobs[i];
            // simulateProxy() pins maxInsts to the budget; mirror that
            // before digesting so the digest covers the run as executed.
            r.job.cfg.maxInsts = jobs[i].insts;
            r.configDigest = configDigest(r.job.cfg);

            TraceSlot *slot = nullptr;
            if (!slots.empty()) {
                auto it = slots.find(workloadKey(jobs[i]));
                if (it != slots.end())
                    slot = it->second.get();
            }

            auto t0 = std::chrono::steady_clock::now();
            std::shared_ptr<const Program> pg;
            std::shared_ptr<const trace::TraceBuffer> tr;
            if (slot) {
                std::lock_guard<std::mutex> lock(slot->m);
                if (!slot->trace && !slot->failed) {
                    try {
                        slot->prog = std::make_shared<const Program>(
                            buildProxy(jobs[i].proxy, jobs[i].insts));
                        trace::TraceRecorder rec(*slot->prog);
                        rec.record(slot->recordCap);
                        slot->trace =
                            std::make_shared<const trace::TraceBuffer>(
                                rec.takeBuffer());
                    } catch (...) {
                        slot->failed = true;
                    }
                }
                pg = slot->prog;
                tr = slot->trace;
            }
            try {
                // r.job.cfg.maxInsts was pinned above, so the shared-
                // program path runs exactly what simulateProxy would.
                r.stats = tr ? Simulator::replay(r.job.cfg, *pg, *tr,
                                                 &r.profile)
                             : simulateProxy(jobs[i].proxy, jobs[i].cfg,
                                             jobs[i].insts, &r.profile);
                r.ok = true;
            } catch (const std::exception &e) {
                r.error = e.what();
            } catch (...) {
                r.error = "unknown exception";
            }
            r.wallSeconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
            size_t done = nDone.fetch_add(1) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progressMutex);
                progress(r, done, jobs.size());
            }
        }
    };

    unsigned n = threads_;
    if (n > jobs.size())
        n = static_cast<unsigned>(jobs.size());
    if (n <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    return results;
}

std::vector<SweepJob>
crossProduct(const std::vector<LsuModel> &models,
             const std::vector<std::string> &proxies, uint64_t insts,
             const std::function<void(SimConfig &)> &tweak)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(models.size() * proxies.size());
    for (LsuModel model : models) {
        for (const auto &proxy : proxies) {
            SweepJob job;
            job.cfg = SimConfig::forModel(model);
            if (tweak)
                tweak(job.cfg);
            job.id = std::string(lsuModelName(model)) + "/" + proxy;
            job.proxy = proxy;
            job.isInteger = findProxy(proxy).isInteger;
            job.insts = insts;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

} // namespace dmdp::driver
