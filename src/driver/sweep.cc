#include "driver/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/arena.h"
#include "common/progress.h"
#include "core/pipeline.h"
#include "driver/results.h"
#include "sim/simulator.h"
#include "trace/tracerecorder.h"
#include "workloads/shared_kernels.h"
#include "workloads/spec_proxies.h"

namespace dmdp::driver {

namespace {

/** FNV-1a over the raw bytes of one value. */
template <typename T>
void
hashField(uint64_t &h, const T &v)
{
    const auto *p = reinterpret_cast<const unsigned char *>(&v);
    for (size_t i = 0; i < sizeof(T); ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
}

void
hashCache(uint64_t &h, const CacheConfig &c)
{
    hashField(h, c.sizeBytes);
    hashField(h, c.assoc);
    hashField(h, c.lineBytes);
    hashField(h, c.hitLatency);
}

} // namespace

uint64_t
programDigest(const Program &prog)
{
    // FNV-1a over the entry point and every chunk in address order
    // (std::map iteration is ordered, so the digest is deterministic).
    // Symbols are metadata — they never reach execution — and stay out.
    uint64_t h = 0xcbf29ce484222325ull;
    auto mixBytes = [&h](uint64_t v, int nbytes) {
        for (int i = 0; i < nbytes; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    mixBytes(prog.entry, 4);
    for (const auto &[addr, bytes] : prog.chunks) {
        mixBytes(addr, 4);
        mixBytes(bytes.size(), 8);
        for (uint8_t b : bytes) {
            h ^= b;
            h *= 0x100000001b3ull;
        }
    }
    return h;
}

uint64_t
configDigest(const SimConfig &cfg)
{
    uint64_t h = 0xcbf29ce484222325ull;
    hashField(h, cfg.model);
    hashField(h, cfg.consistency);
    hashField(h, cfg.fetchWidth);
    hashField(h, cfg.issueWidth);
    hashField(h, cfg.retireWidth);
    hashField(h, cfg.robSize);
    hashField(h, cfg.iqSize);
    hashField(h, cfg.numPhysRegs);
    hashField(h, cfg.frontEndDepth);
    hashField(h, cfg.branchPenalty);
    hashCache(h, cfg.l1i);
    hashCache(h, cfg.l1d);
    hashCache(h, cfg.l2);
    hashField(h, cfg.dramLatency);
    hashField(h, cfg.dramBanks);
    hashField(h, cfg.rowBufferHitLatency);
    hashField(h, cfg.storeBufferSize);
    hashField(h, cfg.storeCoalescing);
    hashField(h, cfg.sqSearchLatency);
    hashField(h, cfg.storeSetSsitSize);
    hashField(h, cfg.storeSetLfstSize);
    hashField(h, cfg.ssbfSets);
    hashField(h, cfg.ssbfWays);
    hashField(h, cfg.sdpEntries);
    hashField(h, cfg.sdpWays);
    hashField(h, cfg.sdpHistoryBits);
    hashField(h, cfg.confidenceMax);
    hashField(h, cfg.confidenceInit);
    hashField(h, cfg.confidenceThreshold);
    hashField(h, cfg.biasedConfidence);
    hashField(h, cfg.silentStoreAwareUpdate);
    hashField(h, cfg.sdpKind);
    hashField(h, cfg.gshareBits);
    hashField(h, cfg.btbEntries);
    hashField(h, cfg.tlbEntries);
    hashField(h, cfg.tlbMissLatency);
    hashField(h, cfg.remoteInvalPerKiloCycle);
    hashField(h, cfg.squashPenalty);
    hashField(h, cfg.maxInsts);
    hashField(h, cfg.warmupInsts);
    return h;
}

uint64_t
multiCoreConfigDigest(const SweepJob &job)
{
    // Start from the per-core machine digest and fold in everything a
    // multi-core run adds on top: fabric geometry/latency, core count
    // and workload composition. A single-core job never calls this.
    uint64_t h = configDigest(job.cfg);
    hashField(h, job.cores);
    hashField(h, job.coh.invalLatency);
    hashField(h, job.coh.downgradeLatency);
    hashCache(h, job.coh.llc);
    hashField(h, job.coh.privateMix);
    auto mixString = [&h](const std::string &s) {
        for (char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ull;
        }
        h ^= 0xff;  // separator: {"a","bc"} != {"ab","c"}
        h *= 0x100000001b3ull;
    };
    for (const std::string &name : job.mix)
        mixString(name);
    mixString(job.sharedKernel);
    hashField(h, job.kernelIters);
    return h;
}

unsigned
defaultJobCount()
{
    if (const char *env = std::getenv("DMDP_JOBS")) {
        unsigned long v = std::strtoul(env, nullptr, 0);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

SweepRunner::SweepRunner(unsigned jobs)
    : threads_(jobs ? jobs : defaultJobCount()),
      traceReuse_(std::getenv("DMDP_NO_TRACE_REUSE") == nullptr)
{}

namespace {

/**
 * Shared state for one (proxy, insts) workload: the built program and
 * its recorded trace. The first worker that needs them builds/records
 * under the mutex; everyone else replays the sealed, immutable buffer
 * read-only against the same read-only program image.
 */
struct TraceSlot
{
    std::mutex m;
    uint64_t recordCap = 0;
    std::shared_ptr<const Program> prog;
    std::shared_ptr<const trace::TraceBuffer> trace;
    uint64_t progDigest = 0;    ///< programDigest(*prog), once built
    uint64_t traceDigest = 0;   ///< digest of the (possibly unrecorded)
    bool digestKnown = false;   ///< ... trace; maybe from the cache memo
    bool failed = false;    ///< recording threw: fall back to live
    std::string error;      ///< why (surfaced once as a sweep warning)
};

std::string
workloadKey(const SweepJob &job)
{
    return job.proxy + '\0' + std::to_string(job.insts);
}

/** Build the slot's shared program (once). False if that ever failed. */
bool
ensureSlotProgram(TraceSlot &slot, const SweepJob &job)
{
    if (slot.failed)
        return false;
    if (slot.prog)
        return true;
    try {
        slot.prog = std::make_shared<const Program>(
            buildProxy(job.proxy, job.insts));
        slot.progDigest = programDigest(*slot.prog);
    } catch (const std::exception &e) {
        slot.failed = true;
        slot.error = e.what();
    } catch (...) {
        slot.failed = true;
        slot.error = "unknown exception";
    }
    return !slot.failed;
}

/** Record the slot's shared trace (once). False if that ever failed. */
bool
ensureSlotTrace(TraceSlot &slot, const SweepJob &job)
{
    if (!ensureSlotProgram(slot, job))
        return false;
    if (slot.trace)
        return true;
    try {
        trace::TraceRecorder rec(*slot.prog);
        rec.record(slot.recordCap);
        slot.trace = std::make_shared<const trace::TraceBuffer>(
            rec.takeBuffer());
    } catch (const std::exception &e) {
        slot.failed = true;
        slot.error = e.what();
    } catch (...) {
        slot.failed = true;
        slot.error = "unknown exception";
    }
    return !slot.failed;
}

/**
 * The watchdog's view of the attempts in flight: each worker registers
 * its stack-owned cancellation token plus a deadline for the duration
 * of one simulation attempt. The watchdog thread scans every ~20 ms
 * and trips the token of any attempt past its deadline; the pipeline
 * polls the token each simulated cycle and throws SimCancelled, so a
 * hung or oversized job is reaped without touching its siblings.
 */
class Watchdog
{
  public:
    explicit Watchdog(double timeout_sec)
        : timeout_(std::chrono::duration_cast<
                   std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(timeout_sec)))
    {
        thread_ = std::thread([this] { loop(); });
    }

    ~Watchdog()
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

    /** RAII registration of one attempt's cancellation token. */
    class Scope
    {
      public:
        Scope(Watchdog *dog, std::atomic<bool> *cancel) : dog_(dog)
        {
            if (dog_)
                id_ = dog_->add(cancel);
        }
        ~Scope()
        {
            if (dog_)
                dog_->remove(id_);
        }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Watchdog *dog_;
        uint64_t id_ = 0;
    };

  private:
    struct Entry
    {
        std::atomic<bool> *cancel;
        std::chrono::steady_clock::time_point deadline;
    };

    uint64_t
    add(std::atomic<bool> *cancel)
    {
        std::lock_guard<std::mutex> lock(m_);
        uint64_t id = nextId_++;
        active_[id] = {cancel, std::chrono::steady_clock::now() + timeout_};
        return id;
    }

    void
    remove(uint64_t id)
    {
        std::lock_guard<std::mutex> lock(m_);
        active_.erase(id);
    }

    void
    loop()
    {
        std::unique_lock<std::mutex> lock(m_);
        while (!stop_) {
            cv_.wait_for(lock, std::chrono::milliseconds(20));
            auto now = std::chrono::steady_clock::now();
            for (auto &[id, entry] : active_) {
                if (now >= entry.deadline)
                    entry.cancel->store(true, std::memory_order_relaxed);
            }
        }
    }

    std::chrono::steady_clock::duration timeout_;
    std::mutex m_;
    std::condition_variable cv_;
    std::unordered_map<uint64_t, Entry> active_;
    uint64_t nextId_ = 0;
    bool stop_ = false;
    std::thread thread_;
};

/**
 * Sum the per-core counters of a multi-core run into one SimStats;
 * cycles becomes the global lockstep round count (per-core cycle
 * counters all equal it anyway — idle-skip is forced off). Summing
 * through the authoritative statFields() name list keeps this in
 * lockstep with the schema; counters are exact in double far beyond
 * any realistic budget (2^53).
 */
SimStats
aggregateMultiCoreStats(const coh::MultiCoreResult &mc)
{
    SimStats sum;
    if (mc.stats.empty())
        return sum;
    auto fields = statFields(mc.stats[0]);
    for (size_t c = 1; c < mc.stats.size(); ++c) {
        auto more = statFields(mc.stats[c]);
        for (size_t k = 0; k < fields.size(); ++k)
            fields[k].second += more[k].second;
    }
    for (const auto &[name, value] : fields)
        assignStatField(sum, name, value);  // derived metrics skipped
    sum.cycles = mc.cycles;
    return sum;
}

/**
 * Workload-content digest of a multi-core job: FNV over every per-core
 * program digest, in core order. Throws when a program fails to build
 * (the attempt loop rebuilds and reports with retry semantics).
 */
uint64_t
multiCoreWorkloadDigest(const SweepJob &job)
{
    uint64_t h = 0xcbf29ce484222325ull;
    if (!job.sharedKernel.empty()) {
        SharedKernelOptions opt;
        opt.iters = job.kernelIters;
        for (const Program &p :
             buildSharedKernel(job.sharedKernel, job.cores, opt))
            hashField(h, programDigest(p));
    } else {
        for (const std::string &name : job.mix)
            hashField(h, programDigest(buildProxy(name, job.insts)));
    }
    return h;
}

/** Execute one multi-core job (mix or shared kernel). */
coh::MultiCoreResult
runMultiCoreJob(const SweepJob &job, const SimConfig &cfg,
                const std::atomic<bool> *cancel)
{
    if (!job.sharedKernel.empty())
        return simulateSharedKernel(job.sharedKernel, job.cores, cfg,
                                    job.coh, job.kernelIters, cancel);
    if (job.mix.size() != job.cores)
        throw std::runtime_error(
            "multi-core job " + job.id + ": mix names " +
            std::to_string(job.mix.size()) + " proxies for " +
            std::to_string(job.cores) + " cores");
    return simulateMix(job.mix, cfg, job.insts, job.coh, cancel);
}

/** Journal key: a result is reusable only for the exact same run. */
std::string
resumeKey(const std::string &id, uint64_t digest, uint64_t insts)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "|%016llx|%llu",
                  static_cast<unsigned long long>(digest),
                  static_cast<unsigned long long>(insts));
    return id + buf;
}

/**
 * Load the ok entries of a JSONL journal. A missing file is an empty
 * journal (the first run of a kill/resume loop). Unparseable lines
 * (e.g. the torn final line of a killed sweep) are skipped; later
 * entries for the same key win.
 */
std::unordered_map<std::string, JobResult>
loadJournal(const std::string &path)
{
    std::unordered_map<std::string, JobResult> entries;
    std::ifstream in(path);
    if (!in)
        return entries;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        JobResult r;
        try {
            if (!resultFromJson(Json::parse(line), r))
                continue;
        } catch (const JsonError &) {
            continue;   // torn write: the job simply re-runs
        }
        if (!r.ok)
            continue;
        entries[resumeKey(r.job.id, r.configDigest, r.job.insts)] =
            std::move(r);
    }
    return entries;
}

} // namespace

std::vector<JobResult>
SweepRunner::run(const std::vector<SweepJob> &jobs,
                 const Progress &progress) const
{
    return runReport(jobs, SweepOptions{}, progress).results;
}

SweepReport
SweepRunner::runReport(const std::vector<SweepJob> &jobs,
                       const SweepOptions &opt,
                       const Progress &progress) const
{
    SweepReport report;
    report.results.resize(jobs.size());
    std::vector<JobResult> &results = report.results;
    std::atomic<size_t> nextJob{0};
    std::atomic<size_t> nDone{0};
    std::atomic<uint64_t> traceFallbacks{0};
    std::atomic<uint64_t> cacheHits{0};
    std::atomic<uint64_t> cacheMisses{0};
    std::mutex progressMutex;

    JobCache *cache = opt.cache;
    const uint64_t schemaDigest = statsSchemaDigest();

    std::unordered_map<std::string, JobResult> resumable;
    if (!opt.resumePath.empty())
        resumable = loadJournal(opt.resumePath);

    std::unique_ptr<Watchdog> watchdog;
    if (opt.jobTimeoutSec > 0)
        watchdog = std::make_unique<Watchdog>(opt.jobTimeoutSec);

    std::mutex journalMutex;
    std::ofstream journal;
    if (!opt.journalPath.empty()) {
        journal.open(opt.journalPath, std::ios::app);
        if (!journal)
            throw std::runtime_error("cannot open journal: " +
                                     opt.journalPath);
    }

    // One slot per workload shared by >1 jobs. Single-use workloads run
    // live: recording is the same emulation work plus encoding, so a
    // trace only pays for itself on the second use. The record cap must
    // cover the deepest fetch-ahead of any sharing config, hence the
    // max ROB size per group.
    std::unordered_map<std::string, std::unique_ptr<TraceSlot>> slots;
    if (traceReuse_) {
        struct Uses
        {
            size_t n = 0;
            uint32_t maxRob = 0;
            uint64_t insts = 0;
        };
        std::unordered_map<std::string, Uses> uses;
        for (const SweepJob &job : jobs) {
            Uses &u = uses[workloadKey(job)];
            ++u.n;
            u.maxRob = std::max(u.maxRob, job.cfg.robSize);
            u.insts = job.insts;
        }
        for (const auto &[key, u] : uses) {
            if (u.n < 2)
                continue;
            auto slot = std::make_unique<TraceSlot>();
            slot->recordCap = proxyRecordCap(u.insts, u.maxRob);
            slots.emplace(key, std::move(slot));
        }
    }

    auto worker = [&]() {
        for (;;) {
            size_t i = nextJob.fetch_add(1);
            if (i >= jobs.size())
                return;
            JobResult &r = results[i];
            r.job = jobs[i];
            const bool multi = jobs[i].cores > 1;
            // simulateProxy() pins maxInsts to the budget; mirror that
            // before digesting so the digest covers the run as executed.
            r.job.cfg.maxInsts = jobs[i].insts;
            r.configDigest = multi ? multiCoreConfigDigest(r.job)
                                   : configDigest(r.job.cfg);

            // Already in the resume journal: restore instead of re-run.
            if (!resumable.empty()) {
                auto it = resumable.find(resumeKey(
                    r.job.id, r.configDigest, r.job.insts));
                if (it != resumable.end()) {
                    const JobResult &saved = it->second;
                    r.stats = saved.stats;
                    r.wallSeconds = saved.wallSeconds;
                    r.ok = true;
                    r.attempts = saved.attempts;
                    r.resumed = true;
                    r.traceDigest = saved.traceDigest;
                    r.coh = saved.coh;
                    size_t done = nDone.fetch_add(1) + 1;
                    if (progress) {
                        std::lock_guard<std::mutex> lock(progressMutex);
                        progress(r, done, jobs.size());
                    }
                    continue;
                }
            }

            TraceSlot *slot = nullptr;
            if (!multi && !slots.empty()) {
                auto it = slots.find(workloadKey(jobs[i]));
                if (it != slots.end())
                    slot = it->second.get();
            }

            auto t0 = std::chrono::steady_clock::now();
            std::shared_ptr<const Program> pg;
            std::shared_ptr<const trace::TraceBuffer> tr;
            bool liveFallback = false;  ///< slot capture failed: run live
            if (multi) {
                // Digest every per-core program so the cache key names
                // the exact workload content; 0 (uncacheable) when a
                // program fails to build — the attempt loop rebuilds
                // and reports the error with retry semantics.
                try {
                    r.traceDigest = multiCoreWorkloadDigest(jobs[i]);
                } catch (...) {
                    r.traceDigest = 0;
                }
            } else if (slot) {
                // Workload digest first, trace second: a cache-memoized
                // digest lets a fully warm workload skip recording (the
                // emulation cost) entirely, not just replaying.
                std::lock_guard<std::mutex> lock(slot->m);
                if (ensureSlotProgram(*slot, jobs[i])) {
                    if (!slot->digestKnown && cache &&
                        cache->lookupTraceDigest(slot->progDigest,
                                                 jobs[i].insts,
                                                 slot->recordCap,
                                                 slot->traceDigest))
                        slot->digestKnown = true;
                    if (!slot->digestKnown &&
                        ensureSlotTrace(*slot, jobs[i])) {
                        slot->traceDigest = slot->trace->digest();
                        slot->digestKnown = true;
                        if (cache)
                            cache->storeTraceDigest(
                                slot->progDigest, jobs[i].insts,
                                slot->recordCap, slot->traceDigest);
                    }
                }
                pg = slot->prog;
                tr = slot->trace;
                if (slot->failed) {
                    traceFallbacks.fetch_add(1);
                    liveFallback = true;
                    // Live fallback executes the program image, so the
                    // workload digest is the program digest (0 when even
                    // the program build failed).
                    r.traceDigest = slot->progDigest;
                } else if (slot->digestKnown) {
                    r.traceDigest = slot->traceDigest;
                }
            } else {
                // Single-use workload: build the program here — exactly
                // what simulateProxy would build — so it can be digested
                // and the cache consulted before any simulation work.
                try {
                    pg = std::make_shared<const Program>(
                        buildProxy(jobs[i].proxy, jobs[i].insts));
                    r.traceDigest = programDigest(*pg);
                } catch (...) {
                    // The attempt loop rebuilds via simulateProxy and
                    // reports the build error with retry semantics.
                    pg = nullptr;
                }
            }

            // Content-addressed cache probe: a stored result with this
            // exact (config, workload, budget, schema) key is
            // bit-identical to recomputation by the determinism and
            // replay-equivalence guarantees.
            JobCache::Key key{r.configDigest, r.traceDigest,
                              jobs[i].insts, schemaDigest};
            auto probe = [&]() -> bool {
                SimStats cachedStats;
                if (!cache->lookup(key, cachedStats))
                    return false;
                r.stats = cachedStats;
                r.ok = true;
                r.cached = true;
                r.error.clear();
                return true;
            };
            bool hit = false;
            if (cache && r.traceDigest != 0) {
                hit = probe();
                if (!hit && slot && !tr && !liveFallback) {
                    // Memo-known digest but a cache miss for this job:
                    // the trace is needed after all. If the recording
                    // disagrees with the memo (stale memo), correct it
                    // and re-probe under the true key.
                    std::lock_guard<std::mutex> lock(slot->m);
                    if (ensureSlotTrace(*slot, jobs[i]) &&
                        slot->trace->digest() != slot->traceDigest) {
                        slot->traceDigest = slot->trace->digest();
                        cache->storeTraceDigest(
                            slot->progDigest, jobs[i].insts,
                            slot->recordCap, slot->traceDigest);
                    }
                    pg = slot->prog;
                    tr = slot->trace;
                    if (slot->failed) {
                        traceFallbacks.fetch_add(1);
                        liveFallback = true;
                        r.traceDigest = slot->progDigest;
                    } else {
                        r.traceDigest = slot->traceDigest;
                    }
                    if (key.workloadDigest != r.traceDigest) {
                        key.workloadDigest = r.traceDigest;
                        if (r.traceDigest != 0)
                            hit = probe();
                    }
                }
                (hit ? cacheHits : cacheMisses).fetch_add(1);
            }
            // Without a cache the first slot pass always recorded the
            // trace (the memo is the only way to skip it), so tr is
            // already materialized on every non-fallback slot path here.

            if (!hit)
            for (uint32_t attempt = 1;; ++attempt) {
                r.attempts = attempt;
                r.profile = SimProfile{};
                std::atomic<bool> cancel{false};
                try {
                    if (beforeAttempt_)
                        beforeAttempt_(jobs[i], attempt);
                    Watchdog::Scope scope(watchdog.get(), &cancel);
                    // Publish retire progress to whoever is sampling
                    // (the farm worker's heartbeat thread): armed on
                    // the executing thread, where the pipeline runs.
                    ProgressPort::Scope pscope(opt.liveProgress);
                    // Pin this worker's bump arena for the attempt: the
                    // pipeline's rings (ROB hot/cold, decode queue,
                    // store buffer) are carved from it and recycled
                    // wholesale on the next attempt. Everything that
                    // outlives the attempt (stats, profile, errors) is
                    // copied out as plain values before the scope ends.
                    JobArena::Scope arena;
                    // r.job.cfg.maxInsts was pinned above, so the
                    // shared-program paths run exactly what
                    // simulateProxy would. pg is null only when the
                    // pre-digest program build threw; simulateProxy
                    // then rebuilds so the error carries retry
                    // semantics and a real message.
                    if (multi) {
                        coh::MultiCoreResult mc =
                            runMultiCoreJob(jobs[i], r.job.cfg, &cancel);
                        r.stats = aggregateMultiCoreStats(mc);
                        r.coh = mc.coh;
                        r.profile.cycles = mc.cycles;
                        if (!mc.profiles.empty())
                            r.profile.wallSeconds =
                                mc.profiles[0].wallSeconds;
                        r.profile.cohInvalsReceived =
                            mc.cohInvalsReceived();
                        r.profile.cohReexecs = mc.cohReexecs();
                    } else {
                    r.stats = tr ? Simulator::replay(r.job.cfg, *pg, *tr,
                                                     &r.profile, &cancel)
                             : pg ? Simulator::run(r.job.cfg, *pg,
                                                   &r.profile, &cancel)
                                  : simulateProxy(jobs[i].proxy,
                                                  jobs[i].cfg,
                                                  jobs[i].insts,
                                                  &r.profile, &cancel);
                    }
                    r.ok = true;
                    r.error.clear();
                    break;
                } catch (const SimCancelled &e) {
                    // Deterministic over-budget run: retrying would
                    // time out identically, so report and move on.
                    r.ok = false;
                    r.timedOut = true;
                    r.error = std::string("timed out after ") +
                              std::to_string(opt.jobTimeoutSec) +
                              "s: " + e.what();
                    break;
                } catch (const std::exception &e) {
                    r.ok = false;
                    r.error = e.what();
                } catch (...) {
                    r.ok = false;
                    r.error = "unknown exception";
                }
                if (attempt > opt.retries)
                    break;
                // Brief linear backoff: retries target transient host
                // trouble, not simulation bugs.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10 * attempt));
            }
            r.wallSeconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();

            // Feed the cache with every newly computed ok result.
            // Timeouts and failures carry no stat vector worth reusing.
            if (cache && !hit && r.ok && r.traceDigest != 0)
                cache->store(key, r);

            if (journal.is_open()) {
                std::string line = resultToJson(r).dump() + "\n";
                std::lock_guard<std::mutex> lock(journalMutex);
                journal << line << std::flush;
            }

            size_t done = nDone.fetch_add(1) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progressMutex);
                progress(r, done, jobs.size());
            }
        }
    };

    unsigned n = threads_;
    if (n > jobs.size())
        n = static_cast<unsigned>(jobs.size());
    if (n <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    report.traceFallbacks = traceFallbacks.load();
    report.cacheHits = cacheHits.load();
    report.cacheMisses = cacheMisses.load();
    for (const JobResult &r : results) {
        report.failed += !r.ok;
        report.timedOut += r.timedOut;
        report.resumed += r.resumed;
    }
    for (const auto &[key, slot] : slots) {
        (void)key;
        if (slot->failed)
            report.warnings.push_back(
                "trace capture failed (jobs fell back to live "
                "emulation): " + slot->error);
    }
    return report;
}

std::vector<SweepJob>
crossProduct(const std::vector<LsuModel> &models,
             const std::vector<std::string> &proxies, uint64_t insts,
             const std::function<void(SimConfig &)> &tweak)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(models.size() * proxies.size());
    for (LsuModel model : models) {
        for (const auto &proxy : proxies) {
            SweepJob job;
            job.cfg = SimConfig::forModel(model);
            if (tweak)
                tweak(job.cfg);
            job.id = std::string(lsuModelName(model)) + "/" + proxy;
            job.proxy = proxy;
            job.isInteger = findProxy(proxy).isInteger;
            job.insts = insts;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

} // namespace dmdp::driver
