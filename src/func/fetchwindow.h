/**
 * @file
 * Replayable fetch window: the seq-indexed ring of in-flight DynInst
 * records shared by the live OracleStream and the trace::TraceCursor.
 *
 * The window spans [base, frontier): records the timing model has
 * fetched (or decoded ahead) but not yet retired, kept so a squash can
 * rewind and re-fetch them. Its population is bounded by the pipeline's
 * fetch-ahead depth (ROB instructions + decode queue), so a power-of-2
 * ring with O(1) append/lookup/retire replaces the deque both streams
 * used to pay per-element allocations and indexing arithmetic on —
 * peek() and fetch() run once per fetched instruction per job, making
 * this one of the hottest paths in a sweep. The ring doubles on the
 * rare config whose fetch-ahead exceeds the initial capacity.
 */

#ifndef DMDP_FUNC_FETCHWINDOW_H
#define DMDP_FUNC_FETCHWINDOW_H

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "func/emulator.h"

namespace dmdp {

class FetchWindow
{
    static_assert(std::is_trivially_copyable_v<DynInst>,
                  "slots are recycled by assignment");

  public:
    /** Covers a 512-entry ROB plus the decode queue without growing. */
    static constexpr size_t kInitialCapacity = 1024;

    FetchWindow() : slots_(kInitialCapacity) {}

    uint64_t base() const { return base_; }
    uint64_t frontier() const { return base_ + count_; }
    bool empty() const { return count_ == 0; }

    bool
    contains(uint64_t seq) const
    {
        return seq >= base_ && seq - base_ < count_;
    }

    /** Record at @p seq; must satisfy contains(seq). */
    const DynInst &
    operator[](uint64_t seq) const
    {
        return slots_[(head_ + (seq - base_)) & (slots_.size() - 1)];
    }

    /** Append a fresh default-initialized slot at the frontier. */
    DynInst &
    append()
    {
        if (count_ == slots_.size())
            grow();
        DynInst &slot = slots_[(head_ + count_) & (slots_.size() - 1)];
        slot = DynInst{};
        ++count_;
        return slot;
    }

    /** Discard every record with seq < @p seq (clamped to the window). */
    void
    retireTo(uint64_t seq)
    {
        if (seq <= base_)
            return;
        uint64_t n = std::min(seq - base_, count_);
        head_ = (head_ + n) & (slots_.size() - 1);
        base_ += n;
        count_ -= n;
    }

  private:
    void
    grow()
    {
        std::vector<DynInst> bigger(slots_.size() * 2);
        for (uint64_t i = 0; i < count_; ++i)
            bigger[i] = slots_[(head_ + i) & (slots_.size() - 1)];
        slots_.swap(bigger);
        head_ = 0;
    }

    std::vector<DynInst> slots_;
    uint64_t head_ = 0;     ///< slot index of the record at base_
    uint64_t base_ = 0;     ///< seq of the oldest retained record
    uint64_t count_ = 0;
};

} // namespace dmdp

#endif // DMDP_FUNC_FETCHWINDOW_H
