/**
 * @file
 * Multi-threaded functional execution support: the epoch-gated shared
 * committed image, the recorded-schedule sequentially-consistent
 * reference replay, and exhaustive SC-interleaving enumeration for
 * litmus outcome sets.
 *
 * The defining SC binding of a multi-core timing run is the order the
 * per-core oracle emulators fetched in: they share one MemImg, and the
 * lockstep MultiCoreSim records (core, step-count) slices as cores
 * generate instructions. mtReplay() re-executes that exact schedule
 * from scratch, which gives the fuzzer a full reference — per-thread
 * retired streams, final registers, and final shared memory — for any
 * interleaving the timing model produced.
 *
 * The epoch gate solves the commit-order problem: per-core store
 * buffers drain independently, so the *timing* order in which store
 * bytes reach the shared committed image is not the SC order.
 * Each store carries its global epoch (DynInst::globalEpoch, stamped
 * at architectural execution); MtMemory applies a byte only when its
 * epoch is not older than the byte's last applied epoch, so the
 * committed image converges to the SC memory state regardless of
 * cross-core drain interleaving.
 */

#ifndef DMDP_FUNC_MTSHARED_H
#define DMDP_FUNC_MTSHARED_H

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "func/emulator.h"
#include "func/memimg.h"
#include "isa/program.h"

namespace dmdp {

/**
 * Epoch-gated view of a shared committed memory image. All writes from
 * every core's store buffer funnel through one instance; bytes whose
 * recorded epoch is younger than the incoming store's are left alone.
 */
class MtMemory
{
  public:
    explicit MtMemory(MemImg &img) : img_(img) {}

    /** Apply a committing store's bytes where @p epoch is newest. */
    void
    commit(uint32_t addr, unsigned size, uint32_t value, uint64_t epoch)
    {
        for (unsigned i = 0; i < size; ++i) {
            uint64_t &last = byteEpoch_[addr + i];
            if (epoch >= last) {
                last = epoch;
                img_.write8(addr + i,
                            static_cast<uint8_t>(value >> (8 * i)));
            }
        }
    }

  private:
    MemImg &img_;
    std::unordered_map<uint32_t, uint64_t> byteEpoch_;
};

/** One schedule step: @p thread executes @p steps instructions. */
struct MtSlice
{
    uint32_t thread = 0;
    uint32_t steps = 0;
};

/** The SC reference for one multi-threaded schedule. */
struct MtReference
{
    /** Per-thread committed streams, oracle-annotated per thread. */
    std::vector<std::vector<DynInst>> streams;
    /** Final shared memory after the whole schedule. */
    MemImg mem;
    /** Per-thread final architectural register files. */
    std::vector<std::array<uint32_t, kNumArchRegs>> finalRegs;
    /** Per-thread halted flags after the schedule. */
    std::vector<bool> halted;

    bool
    allHalted() const
    {
        for (bool h : halted)
            if (!h)
                return false;
        return true;
    }
};

/**
 * Execute @p threads over one shared memory image in exactly the order
 * @p schedule names, with per-thread dependence annotation. Throws
 * std::runtime_error if a slice steps a halted thread — a corrupt
 * schedule, never a legal timing-model product.
 */
MtReference mtReplay(const std::vector<Program> &threads,
                     const std::vector<MtSlice> &schedule);

/**
 * Enumerate every sequentially consistent interleaving of @p threads
 * (each capped at @p maxStepsPerThread dynamic instructions — exceeding
 * the cap throws, as does passing @p maxInterleavings leaves) and call
 * @p fn with the completed reference for each. Intended for litmus
 * shapes: a handful of instructions per thread, hundreds to a few
 * hundred thousand interleavings. The allowed outcome set of a litmus
 * test is the union of what @p fn observes.
 */
void forEachScInterleaving(
    const std::vector<Program> &threads, uint32_t maxStepsPerThread,
    uint64_t maxInterleavings,
    const std::function<void(const MtReference &)> &fn);

} // namespace dmdp

#endif // DMDP_FUNC_MTSHARED_H
