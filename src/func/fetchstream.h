/**
 * @file
 * The fetch-stream contract between the timing model and the functional
 * front end: a replayable committed-order stream of DynInst records
 * with squash rewind and retire-point discard. Implemented by the live
 * OracleStream (emulator-backed) and by trace::TraceCursor (replay of a
 * pre-recorded TraceBuffer); the pipeline is indifferent to which.
 */

#ifndef DMDP_FUNC_FETCHSTREAM_H
#define DMDP_FUNC_FETCHSTREAM_H

#include <cstdint>

#include "func/emulator.h"

namespace dmdp {

/**
 * Replayable committed-order dynamic instruction stream.
 *
 * The timing model fetches through a cursor; on a squash it rewinds the
 * cursor to the squash point and re-fetches the same DynInst records
 * (wrong-path work is modeled as fetch bubbles, see DESIGN.md). Records
 * older than the retire point may be discarded to bound memory.
 */
class FetchStream
{
  public:
    virtual ~FetchStream() = default;

    /** True when every generated instruction has been fetched and the
     * program has halted. */
    virtual bool atEnd() = 0;

    /** The next instruction to fetch (generates lazily). */
    virtual const DynInst &peek() = 0;

    /** Fetch the next instruction and advance the cursor. */
    virtual DynInst fetch() = 0;

    /**
     * Advance the cursor past the record last returned by peek();
     * equivalent to discarding fetch()'s result without the copy.
     * Precondition: !atEnd().
     */
    virtual void advance() { fetch(); }

    /** Rewind the fetch cursor to @p seq (squash recovery). */
    virtual void rewindTo(uint64_t seq) = 0;

    /** Allow records with seq < @p seq to be discarded. */
    virtual void retireUpTo(uint64_t seq) = 0;

    virtual uint64_t cursor() const = 0;
};

} // namespace dmdp

#endif // DMDP_FUNC_FETCHSTREAM_H
