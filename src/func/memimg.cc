#include "func/memimg.h"

#include <algorithm>
#include <cassert>

namespace dmdp {

void
MemImg::load(const Program &prog)
{
    for (const auto &[addr, bytes] : prog.chunks) {
        for (size_t i = 0; i < bytes.size(); ++i)
            write8(addr + static_cast<uint32_t>(i), bytes[i]);
    }
}

const MemImg::Page *
MemImg::findPage(uint32_t addr) const
{
    uint32_t idx = addr / kPageBytes;
    if (idx == mruIdx)
        return mruPage;
    auto it = pages.find(idx);
    if (it == pages.end())
        return nullptr;
    mruIdx = idx;
    mruPage = const_cast<Page *>(&it->second);
    return mruPage;
}

MemImg::Page &
MemImg::touchPage(uint32_t addr)
{
    uint32_t idx = addr / kPageBytes;
    if (idx == mruIdx)
        return *mruPage;
    auto [it, inserted] = pages.try_emplace(idx);
    if (inserted)
        it->second.fill(0);
    mruIdx = idx;
    mruPage = &it->second;
    return it->second;
}

uint8_t
MemImg::read8(uint32_t addr) const
{
    const Page *page = findPage(addr);
    return page ? (*page)[addr % kPageBytes] : 0;
}

uint16_t
MemImg::read16(uint32_t addr) const
{
    if (addr % kPageBytes <= kPageBytes - 2) {
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        const uint8_t *p = page->data() + addr % kPageBytes;
        return static_cast<uint16_t>(p[0] |
                                     (static_cast<uint16_t>(p[1]) << 8));
    }
    return static_cast<uint16_t>(read8(addr) |
                                 (static_cast<uint16_t>(read8(addr + 1)) << 8));
}

uint32_t
MemImg::read32(uint32_t addr) const
{
    if (addr % kPageBytes <= kPageBytes - 4) {
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        const uint8_t *p = page->data() + addr % kPageBytes;
        return static_cast<uint32_t>(p[0]) |
               (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16) |
               (static_cast<uint32_t>(p[3]) << 24);
    }
    return static_cast<uint32_t>(read16(addr)) |
           (static_cast<uint32_t>(read16(addr + 2)) << 16);
}

void
MemImg::write8(uint32_t addr, uint8_t value)
{
    touchPage(addr)[addr % kPageBytes] = value;
}

void
MemImg::write16(uint32_t addr, uint16_t value)
{
    if (addr % kPageBytes <= kPageBytes - 2) {
        uint8_t *p = touchPage(addr).data() + addr % kPageBytes;
        p[0] = static_cast<uint8_t>(value);
        p[1] = static_cast<uint8_t>(value >> 8);
        return;
    }
    write8(addr, static_cast<uint8_t>(value));
    write8(addr + 1, static_cast<uint8_t>(value >> 8));
}

void
MemImg::write32(uint32_t addr, uint32_t value)
{
    if (addr % kPageBytes <= kPageBytes - 4) {
        uint8_t *p = touchPage(addr).data() + addr % kPageBytes;
        p[0] = static_cast<uint8_t>(value);
        p[1] = static_cast<uint8_t>(value >> 8);
        p[2] = static_cast<uint8_t>(value >> 16);
        p[3] = static_cast<uint8_t>(value >> 24);
        return;
    }
    write16(addr, static_cast<uint16_t>(value));
    write16(addr + 2, static_cast<uint16_t>(value >> 16));
}

uint32_t
MemImg::read(uint32_t addr, unsigned size) const
{
    switch (size) {
      case 1: return read8(addr);
      case 2: return read16(addr);
      case 4: return read32(addr);
      default: assert(false); return 0;
    }
}

std::vector<uint32_t>
MemImg::mappedPageBases() const
{
    std::vector<uint32_t> bases;
    bases.reserve(pages.size());
    for (const auto &[idx, page] : pages)
        bases.push_back(idx * kPageBytes);
    std::sort(bases.begin(), bases.end());
    return bases;
}

std::optional<uint32_t>
MemImg::firstDifference(const MemImg &other) const
{
    // Walk the union of mapped pages in address order; a page missing
    // on either side compares as all zeroes.
    std::vector<uint32_t> bases = mappedPageBases();
    std::vector<uint32_t> other_bases = other.mappedPageBases();
    std::vector<uint32_t> all;
    all.reserve(bases.size() + other_bases.size());
    std::set_union(bases.begin(), bases.end(), other_bases.begin(),
                   other_bases.end(), std::back_inserter(all));
    for (uint32_t base : all) {
        const Page *a = findPage(base);
        const Page *b = other.findPage(base);
        if (a && b && *a == *b)
            continue;
        for (uint32_t off = 0; off < kPageBytes; ++off) {
            uint8_t av = a ? (*a)[off] : 0;
            uint8_t bv = b ? (*b)[off] : 0;
            if (av != bv)
                return base + off;
        }
    }
    return std::nullopt;
}

void
MemImg::write(uint32_t addr, unsigned size, uint32_t value)
{
    switch (size) {
      case 1: write8(addr, static_cast<uint8_t>(value)); break;
      case 2: write16(addr, static_cast<uint16_t>(value)); break;
      case 4: write32(addr, value); break;
      default: assert(false);
    }
}

} // namespace dmdp
