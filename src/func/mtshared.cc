#include "func/mtshared.h"

#include <memory>
#include <stdexcept>
#include <string>

#include "func/writertable.h"

namespace dmdp {

MtReference
mtReplay(const std::vector<Program> &threads,
         const std::vector<MtSlice> &schedule)
{
    size_t n = threads.size();
    MtReference ref;
    ref.streams.resize(n);
    ref.finalRegs.resize(n);
    ref.halted.assign(n, false);

    for (const Program &prog : threads)
        ref.mem.load(prog);

    MtContext ctx;
    std::vector<std::unique_ptr<Emulator>> emus;
    std::vector<std::unique_ptr<DepAnnotator>> deps;
    emus.reserve(n);
    for (size_t t = 0; t < n; ++t) {
        emus.push_back(std::make_unique<Emulator>(
            threads[t], ref.mem, static_cast<uint32_t>(t), &ctx));
        deps.push_back(std::make_unique<DepAnnotator>());
    }

    for (const MtSlice &slice : schedule) {
        if (slice.thread >= n)
            throw std::runtime_error("mtReplay: slice names thread " +
                                     std::to_string(slice.thread) +
                                     " of " + std::to_string(n));
        Emulator &emu = *emus[slice.thread];
        for (uint32_t i = 0; i < slice.steps; ++i) {
            if (emu.halted())
                throw std::runtime_error(
                    "mtReplay: schedule steps halted thread " +
                    std::to_string(slice.thread));
            DynInst dyn = emu.step();
            deps[slice.thread]->annotate(dyn);
            ref.streams[slice.thread].push_back(dyn);
        }
    }

    for (size_t t = 0; t < n; ++t) {
        ref.halted[t] = emus[t]->halted();
        for (unsigned r = 0; r < kNumArchRegs; ++r)
            ref.finalRegs[t][r] = emus[t]->reg(r);
    }
    return ref;
}

namespace {

std::vector<MtSlice>
toSlices(const std::vector<uint32_t> &choices)
{
    std::vector<MtSlice> slices;
    for (uint32_t t : choices) {
        if (!slices.empty() && slices.back().thread == t)
            ++slices.back().steps;
        else
            slices.push_back(MtSlice{t, 1});
    }
    return slices;
}

} // namespace

void
forEachScInterleaving(const std::vector<Program> &threads,
                      uint32_t maxStepsPerThread,
                      uint64_t maxInterleavings,
                      const std::function<void(const MtReference &)> &fn)
{
    size_t n = threads.size();
    uint64_t leaves = 0;
    std::vector<uint32_t> choices;
    std::vector<uint32_t> steps(n, 0);

    // Replay-from-scratch DFS: which threads are runnable at a node
    // depends on execution (branches read shared memory), so the
    // prefix is re-executed per node. Litmus-sized programs keep the
    // total step count trivial.
    std::function<void()> dfs = [&]() {
        MtReference ref = mtReplay(threads, toSlices(choices));
        if (ref.allHalted()) {
            if (++leaves > maxInterleavings)
                throw std::runtime_error(
                    "forEachScInterleaving: more than " +
                    std::to_string(maxInterleavings) + " interleavings");
            fn(ref);
            return;
        }
        for (uint32_t t = 0; t < n; ++t) {
            if (ref.halted[t])
                continue;
            if (steps[t] >= maxStepsPerThread)
                throw std::runtime_error(
                    "forEachScInterleaving: thread " + std::to_string(t) +
                    " exceeds " + std::to_string(maxStepsPerThread) +
                    " steps without halting");
            choices.push_back(t);
            ++steps[t];
            dfs();
            --steps[t];
            choices.pop_back();
        }
    };
    dfs();
}

} // namespace dmdp
