/**
 * @file
 * Architectural interpreter. Executes the program one instruction at a
 * time and records everything the timing model needs about each dynamic
 * instruction (addresses, values, branch outcomes).
 */

#ifndef DMDP_FUNC_EMULATOR_H
#define DMDP_FUNC_EMULATOR_H

#include <array>
#include <cstdint>

#include "func/memimg.h"
#include "isa/inst.h"
#include "isa/program.h"

namespace dmdp {

/**
 * One committed dynamic instruction with its architectural effects and
 * (once annotated by the Oracle) true memory dependence information.
 */
struct DynInst
{
    uint64_t seq = 0;       ///< dynamic sequence number (0-based)
    uint32_t pc = 0;
    Inst inst;

    // Architectural results.
    uint32_t resultValue = 0;   ///< value written to the dest register
    uint32_t effAddr = 0;       ///< memory ops: effective byte address
    uint32_t storeValue = 0;    ///< stores: raw register value stored
    bool branchTaken = false;
    uint32_t nextPc = 0;

    // Oracle memory-dependence annotations (stores and loads).
    uint64_t ssn = 0;           ///< stores: 1-based store sequence number
    uint64_t storesBefore = 0;  ///< #stores older than this instruction
    uint64_t lastWriterSsn = 0; ///< loads: youngest older writer (0=none)
    bool fullCoverage = false;  ///< loads: that writer wrote every byte read
    bool multiWriter = false;   ///< loads: read bytes from >1 stores
    bool silentStore = false;   ///< stores: wrote back the existing value

    /**
     * Multi-threaded execution only: global store ordinal across every
     * thread sharing one memory image, stamped by the emulator at the
     * instant the store architecturally executed. The defining
     * sequentially-consistent binding of the run — the epoch-gated
     * shared commit (func/mtshared.h) uses it so the timing cores'
     * committed image converges to the SC memory state regardless of
     * cross-core store-buffer drain order. Zero in single-threaded
     * runs and for non-stores.
     */
    uint64_t globalEpoch = 0;

    bool isLoad() const { return inst.isLoad(); }
    bool isStore() const { return inst.isStore(); }

    /** Oracle store distance (paper: SSN_rename - SSN_byp). */
    uint64_t
    storeDistance() const
    {
        return lastWriterSsn ? storesBefore - lastWriterSsn : 0;
    }
};

/**
 * Shared cross-thread state for multi-threaded functional execution:
 * one instance per shared-memory run, handed to every thread's
 * emulator. The store epoch is the global ordinal of architectural
 * stores across all threads — the interleaving the emulators actually
 * executed in IS the run's sequentially-consistent schedule.
 */
struct MtContext
{
    uint64_t storeEpoch = 0;
};

/** Architectural state machine for the simulated ISA. */
class Emulator
{
  public:
    explicit Emulator(const Program &prog);

    /**
     * Multi-threaded variant: execute over an externally owned shared
     * memory image (already loaded with every thread's program — this
     * ctor loads nothing). @p threadId offsets the conventional stack
     * so threads never collide there; @p mt (optional) stamps each
     * store's DynInst::globalEpoch. @p sharedMem and @p mt must
     * outlive the emulator.
     */
    Emulator(const Program &prog, MemImg &sharedMem, uint32_t threadId,
             MtContext *mt = nullptr);

    /** Execute one instruction; undefined if halted(). */
    DynInst step();

    bool halted() const { return halted_; }
    uint32_t pc() const { return pc_; }
    uint64_t instCount() const { return count; }

    uint32_t reg(unsigned n) const { return regs[n]; }
    void setReg(unsigned n, uint32_t v) { if (n) regs[n] = v; }

    MemImg &memory() { return *mem_; }
    const MemImg &memory() const { return *mem_; }

    /** Conventional initial stack pointer for @p threadId (0 = main). */
    static uint32_t
    stackBase(uint32_t threadId)
    {
        return 0x7fff0000u - threadId * 0x400000u;
    }

  private:
    uint32_t aluResult(const Inst &inst) const;

    MemImg ownedMem_;   ///< storage for the single-threaded case
    MemImg *mem_;       ///< &ownedMem_, or the shared image
    MtContext *mt_ = nullptr;
    std::array<uint32_t, kNumArchRegs> regs{};
    uint32_t pc_;
    bool halted_ = false;
    uint64_t count = 0;
};

} // namespace dmdp

#endif // DMDP_FUNC_EMULATOR_H
