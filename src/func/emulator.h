/**
 * @file
 * Architectural interpreter. Executes the program one instruction at a
 * time and records everything the timing model needs about each dynamic
 * instruction (addresses, values, branch outcomes).
 */

#ifndef DMDP_FUNC_EMULATOR_H
#define DMDP_FUNC_EMULATOR_H

#include <array>
#include <cstdint>

#include "func/memimg.h"
#include "isa/inst.h"
#include "isa/program.h"

namespace dmdp {

/**
 * One committed dynamic instruction with its architectural effects and
 * (once annotated by the Oracle) true memory dependence information.
 */
struct DynInst
{
    uint64_t seq = 0;       ///< dynamic sequence number (0-based)
    uint32_t pc = 0;
    Inst inst;

    // Architectural results.
    uint32_t resultValue = 0;   ///< value written to the dest register
    uint32_t effAddr = 0;       ///< memory ops: effective byte address
    uint32_t storeValue = 0;    ///< stores: raw register value stored
    bool branchTaken = false;
    uint32_t nextPc = 0;

    // Oracle memory-dependence annotations (stores and loads).
    uint64_t ssn = 0;           ///< stores: 1-based store sequence number
    uint64_t storesBefore = 0;  ///< #stores older than this instruction
    uint64_t lastWriterSsn = 0; ///< loads: youngest older writer (0=none)
    bool fullCoverage = false;  ///< loads: that writer wrote every byte read
    bool multiWriter = false;   ///< loads: read bytes from >1 stores
    bool silentStore = false;   ///< stores: wrote back the existing value

    bool isLoad() const { return inst.isLoad(); }
    bool isStore() const { return inst.isStore(); }

    /** Oracle store distance (paper: SSN_rename - SSN_byp). */
    uint64_t
    storeDistance() const
    {
        return lastWriterSsn ? storesBefore - lastWriterSsn : 0;
    }
};

/** Architectural state machine for the simulated ISA. */
class Emulator
{
  public:
    explicit Emulator(const Program &prog);

    /** Execute one instruction; undefined if halted(). */
    DynInst step();

    bool halted() const { return halted_; }
    uint32_t pc() const { return pc_; }
    uint64_t instCount() const { return count; }

    uint32_t reg(unsigned n) const { return regs[n]; }
    void setReg(unsigned n, uint32_t v) { if (n) regs[n] = v; }

    MemImg &memory() { return mem; }
    const MemImg &memory() const { return mem; }

  private:
    uint32_t aluResult(const Inst &inst) const;

    MemImg mem;
    std::array<uint32_t, kNumArchRegs> regs{};
    uint32_t pc_;
    bool halted_ = false;
    uint64_t count = 0;
};

} // namespace dmdp

#endif // DMDP_FUNC_EMULATOR_H
