/**
 * @file
 * Sparse little-endian byte-addressable memory image built from 4 KiB
 * pages. Used both by the functional emulator (architectural memory)
 * and by the timing model (committed memory state).
 */

#ifndef DMDP_FUNC_MEMIMG_H
#define DMDP_FUNC_MEMIMG_H

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "isa/program.h"

namespace dmdp {

/** Sparse memory image. Unmapped bytes read as zero. */
class MemImg
{
  public:
    static constexpr uint32_t kPageBytes = 4096;

    MemImg() = default;

    // The MRU pointer references this object's own page map, so copies
    // and moves must not inherit it (a copied cache would alias the
    // source's pages).
    MemImg(const MemImg &other) : pages(other.pages) {}
    MemImg(MemImg &&other) noexcept : pages(std::move(other.pages)) {}
    MemImg &
    operator=(const MemImg &other)
    {
        pages = other.pages;
        invalidateMru();
        return *this;
    }
    MemImg &
    operator=(MemImg &&other) noexcept
    {
        pages = std::move(other.pages);
        invalidateMru();
        return *this;
    }

    /** Copy a program's chunks into memory. */
    void load(const Program &prog);

    uint8_t read8(uint32_t addr) const;
    uint16_t read16(uint32_t addr) const;
    uint32_t read32(uint32_t addr) const;

    void write8(uint32_t addr, uint8_t value);
    void write16(uint32_t addr, uint16_t value);
    void write32(uint32_t addr, uint32_t value);

    /** Generic access helpers used by the memory models. */
    uint32_t read(uint32_t addr, unsigned size) const;
    void write(uint32_t addr, unsigned size, uint32_t value);

    /** Number of mapped pages (for tests). */
    size_t mappedPages() const { return pages.size(); }

    /** Base addresses of all mapped pages, ascending. */
    std::vector<uint32_t> mappedPageBases() const;

    /**
     * Lowest byte address where this image and @p other disagree, or
     * nullopt if they are semantically identical. Unmapped bytes
     * compare as zero, so images that differ only in which all-zero
     * pages they map are equal. Used by the differential fuzzer to
     * compare committed timing-model memory against the architectural
     * oracle.
     */
    std::optional<uint32_t> firstDifference(const MemImg &other) const;

  private:
    using Page = std::array<uint8_t, kPageBytes>;

    const Page *findPage(uint32_t addr) const;
    Page &touchPage(uint32_t addr);

    void
    invalidateMru()
    {
        mruIdx = ~0u;
        mruPage = nullptr;
    }

    std::unordered_map<uint32_t, Page> pages;

    // One-entry MRU page cache: sequential access (instruction fetch,
    // data runs) resolves the page with a compare instead of a hash
    // probe. Element pointers into unordered_map are stable across
    // insertions, so only copies/moves invalidate it.
    mutable uint32_t mruIdx = ~0u;
    mutable Page *mruPage = nullptr;
};

} // namespace dmdp

#endif // DMDP_FUNC_MEMIMG_H
