#include "func/emulator.h"

#include <stdexcept>

#include "common/bitutil.h"
#include "isa/encode.h"

namespace dmdp {

Emulator::Emulator(const Program &prog)
    : mem_(&ownedMem_), pc_(prog.entry)
{
    ownedMem_.load(prog);
    // Conventional initial stack, high in the address space.
    regs[29] = stackBase(0);
}

Emulator::Emulator(const Program &prog, MemImg &sharedMem,
                   uint32_t threadId, MtContext *mt)
    : mem_(&sharedMem), mt_(mt), pc_(prog.entry)
{
    regs[29] = stackBase(threadId);
}

uint32_t
Emulator::aluResult(const Inst &inst) const
{
    uint32_t a = regs[inst.rs];
    uint32_t b = regs[inst.rt];
    switch (inst.op) {
      case Op::SLL:  return a << (inst.imm & 31);
      case Op::SRL:  return a >> (inst.imm & 31);
      case Op::SRA:  return static_cast<uint32_t>(
                         static_cast<int32_t>(a) >> (inst.imm & 31));
      case Op::ADD:  return a + b;
      case Op::SUB:  return a - b;
      case Op::AND:  return a & b;
      case Op::OR:   return a | b;
      case Op::XOR:  return a ^ b;
      case Op::SLT:  return static_cast<int32_t>(a) < static_cast<int32_t>(b);
      case Op::SLTU: return a < b;
      case Op::MUL:  return a * b;
      case Op::ADDI: return a + static_cast<uint32_t>(inst.imm);
      case Op::SLTI: return static_cast<int32_t>(a) < inst.imm;
      case Op::SLTIU: return a < static_cast<uint32_t>(inst.imm);
      case Op::ANDI: return a & static_cast<uint32_t>(inst.imm);
      case Op::ORI:  return a | static_cast<uint32_t>(inst.imm);
      case Op::XORI: return a ^ static_cast<uint32_t>(inst.imm);
      case Op::LUI:  return static_cast<uint32_t>(inst.imm) << 16;
      default: return 0;
    }
}

DynInst
Emulator::step()
{
    if (halted_)
        throw std::runtime_error("emulator stepped after halt");

    DynInst dyn;
    dyn.seq = count++;
    dyn.pc = pc_;
    dyn.inst = decode(mem_->read32(pc_));
    const Inst &inst = dyn.inst;
    uint32_t next = pc_ + 4;

    switch (inst.op) {
      case Op::INVALID:
        throw std::runtime_error("invalid instruction at pc " +
                                 std::to_string(pc_));
      case Op::HALT:
        halted_ = true;
        break;

      case Op::LB: case Op::LH: case Op::LW: case Op::LBU: case Op::LHU: {
        uint32_t addr = regs[inst.rs] + static_cast<uint32_t>(inst.imm);
        unsigned size = inst.memSize();
        if (addr & (size - 1))
            throw std::runtime_error("misaligned load at pc " +
                                     std::to_string(pc_));
        uint32_t raw = mem_->read(addr, size);
        uint32_t value = raw;
        if (inst.op == Op::LB)
            value = static_cast<uint32_t>(sext(raw, 8));
        else if (inst.op == Op::LH)
            value = static_cast<uint32_t>(sext(raw, 16));
        dyn.effAddr = addr;
        dyn.resultValue = value;
        setReg(inst.rt, value);
        break;
      }

      case Op::SB: case Op::SH: case Op::SW: {
        uint32_t addr = regs[inst.rs] + static_cast<uint32_t>(inst.imm);
        unsigned size = inst.memSize();
        if (addr & (size - 1))
            throw std::runtime_error("misaligned store at pc " +
                                     std::to_string(pc_));
        uint32_t value = regs[inst.rt];
        dyn.effAddr = addr;
        dyn.storeValue = value;
        dyn.silentStore = (mem_->read(addr, size) ==
                           (value & ((size == 4) ? ~0u
                                                 : ((1u << (size * 8)) - 1u))));
        if (mt_)
            dyn.globalEpoch = ++mt_->storeEpoch;
        mem_->write(addr, size, value);
        break;
      }

      case Op::BEQ:
        dyn.branchTaken = regs[inst.rs] == regs[inst.rt];
        break;
      case Op::BNE:
        dyn.branchTaken = regs[inst.rs] != regs[inst.rt];
        break;
      case Op::BLEZ:
        dyn.branchTaken = static_cast<int32_t>(regs[inst.rs]) <= 0;
        break;
      case Op::BGTZ:
        dyn.branchTaken = static_cast<int32_t>(regs[inst.rs]) > 0;
        break;
      case Op::BLTZ:
        dyn.branchTaken = static_cast<int32_t>(regs[inst.rs]) < 0;
        break;
      case Op::BGEZ:
        dyn.branchTaken = static_cast<int32_t>(regs[inst.rs]) >= 0;
        break;

      case Op::J:
        next = static_cast<uint32_t>(inst.imm) << 2;
        dyn.branchTaken = true;
        break;
      case Op::JAL:
        setReg(31, pc_ + 4);
        dyn.resultValue = pc_ + 4;
        next = static_cast<uint32_t>(inst.imm) << 2;
        dyn.branchTaken = true;
        break;
      case Op::JR:
        next = regs[inst.rs];
        dyn.branchTaken = true;
        break;

      default: {
        uint32_t value = aluResult(inst);
        dyn.resultValue = value;
        int dest = inst.destReg();
        if (dest > 0)
            setReg(static_cast<unsigned>(dest), value);
        break;
      }
    }

    if (inst.isCondBranch() && dyn.branchTaken)
        next = pc_ + 4 + (static_cast<uint32_t>(inst.imm) << 2);

    dyn.nextPc = next;
    pc_ = next;
    return dyn;
}

} // namespace dmdp
