/**
 * @file
 * Oracle instruction stream: wraps the functional emulator, annotates
 * every dynamic instruction with true memory-dependence information
 * (per-byte last-writer store sequence numbers), and provides the
 * replayable fetch window the timing model needs for squash recovery.
 */

#ifndef DMDP_FUNC_ORACLE_H
#define DMDP_FUNC_ORACLE_H

#include <cstdint>

#include "func/emulator.h"
#include "func/fetchstream.h"
#include "func/fetchwindow.h"
#include "func/writertable.h"

namespace dmdp {

/**
 * The live (emulator-backed) FetchStream: generates annotated DynInst
 * records lazily by stepping the functional emulator. See
 * trace::TraceCursor for the capture-once/replay-many alternative.
 */
class OracleStream : public FetchStream
{
  public:
    explicit OracleStream(const Program &prog);

    /**
     * Multi-threaded variant: this thread's emulator executes over the
     * shared @p sharedMem image (pre-loaded by the caller with every
     * thread's program) and stamps store epochs into @p mt. Dependence
     * annotation stays per-thread: lastWriterSsn names same-thread
     * writers only, exactly what the per-core predictors model.
     */
    OracleStream(const Program &prog, MemImg &sharedMem,
                 uint32_t threadId, MtContext *mt);

    bool
    atEnd() override
    {
        return cursor_ >= window.frontier() && emu.halted();
    }

    const DynInst &
    peek() override
    {
        if (window.contains(cursor_))
            return window[cursor_];
        return at(cursor_);
    }

    DynInst
    fetch() override
    {
        if (window.contains(cursor_))
            return window[cursor_++];
        const DynInst &dyn = at(cursor_);
        ++cursor_;
        return dyn;
    }

    void
    advance() override
    {
        if (!window.contains(cursor_))
            at(cursor_);    // generate (or fault) exactly like fetch()
        ++cursor_;
    }

    void rewindTo(uint64_t seq) override;
    void retireUpTo(uint64_t seq) override;

    uint64_t cursor() const override { return cursor_; }

    const Emulator &emulator() const { return emu; }

  private:
    /** Run the emulator one step and annotate the result. */
    void generateNext();

    /** Ensure the record at @p seq is buffered (generating if needed). */
    const DynInst &at(uint64_t seq);

    Emulator emu;
    FetchWindow window;
    uint64_t cursor_ = 0;

    /** Per-byte last-writer tracking (shared with the trace recorder). */
    DepAnnotator dep;
};

} // namespace dmdp

#endif // DMDP_FUNC_ORACLE_H
