/**
 * @file
 * Oracle instruction stream: wraps the functional emulator, annotates
 * every dynamic instruction with true memory-dependence information
 * (per-byte last-writer store sequence numbers), and provides the
 * replayable fetch window the timing model needs for squash recovery.
 */

#ifndef DMDP_FUNC_ORACLE_H
#define DMDP_FUNC_ORACLE_H

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "func/emulator.h"

namespace dmdp {

/**
 * Replayable committed-order dynamic instruction stream.
 *
 * The timing model fetches through a cursor; on a squash it rewinds the
 * cursor to the squash point and re-fetches the same DynInst records
 * (wrong-path work is modeled as fetch bubbles, see DESIGN.md). Records
 * older than the retire point may be discarded to bound memory.
 */
class OracleStream
{
  public:
    explicit OracleStream(const Program &prog);

    /** True when every generated instruction has been fetched and the
     * program has halted. */
    bool atEnd();

    /** The next instruction to fetch (generates lazily). */
    const DynInst &peek();

    /** Fetch the next instruction and advance the cursor. */
    DynInst fetch();

    /** Rewind the fetch cursor to @p seq (squash recovery). */
    void rewindTo(uint64_t seq);

    /** Allow records with seq < @p seq to be discarded. */
    void retireUpTo(uint64_t seq);

    uint64_t cursor() const { return cursor_; }

    const Emulator &emulator() const { return emu; }

  private:
    /** Run the emulator one step and annotate the result. */
    void generateNext();

    /** Ensure the record at @p seq is buffered (generating if needed). */
    const DynInst &at(uint64_t seq);

    Emulator emu;
    std::deque<DynInst> buffer;
    uint64_t bufferBase = 0;    ///< seq of buffer.front()
    uint64_t cursor_ = 0;
    uint64_t storeCount = 0;

    /** word address -> SSN of the last store writing each byte. */
    std::unordered_map<uint32_t, std::array<uint64_t, 4>> byteWriter;
};

} // namespace dmdp

#endif // DMDP_FUNC_ORACLE_H
