/**
 * @file
 * Per-byte last-writer tracking for the oracle's true memory dependence
 * annotations, plus the annotator shared by the live oracle stream and
 * the trace recorder.
 *
 * WriterTable replaces the old word-keyed
 * `std::unordered_map<uint32_t, std::array<uint64_t, 4>>` with a paged
 * flat array mirroring MemImg's 4 KiB pages: one 8-byte SSN slot per
 * memory byte, a hash probe only on a page change (and usually not even
 * then, thanks to a one-entry MRU cache). Aligned accesses never cross
 * a page, so every load/store annotation touches one contiguous run.
 */

#ifndef DMDP_FUNC_WRITERTABLE_H
#define DMDP_FUNC_WRITERTABLE_H

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "func/emulator.h"
#include "func/memimg.h"

namespace dmdp {

/** Sparse per-byte SSN-of-last-writer table. Unwritten bytes read 0. */
class WriterTable
{
  public:
    static constexpr uint32_t kPageBytes = MemImg::kPageBytes;

    WriterTable() = default;
    WriterTable(const WriterTable &) = delete;
    WriterTable &operator=(const WriterTable &) = delete;

    /** Slots for @p size bytes at @p addr, creating the page. */
    uint64_t *
    touch(uint32_t addr)
    {
        return page(addr, true) + addr % kPageBytes;
    }

    /** Slots at @p addr, or nullptr if the page was never written. */
    const uint64_t *
    find(uint32_t addr) const
    {
        uint64_t *p = const_cast<WriterTable *>(this)->page(addr, false);
        return p ? p + addr % kPageBytes : nullptr;
    }

    size_t mappedPages() const { return pages.size(); }

  private:
    using Page = std::array<uint64_t, kPageBytes>;

    uint64_t *
    page(uint32_t addr, bool create)
    {
        uint32_t idx = addr / kPageBytes;
        if (idx == mruIdx)
            return mruPage;
        auto it = pages.find(idx);
        if (it == pages.end()) {
            if (!create)
                return nullptr;
            it = pages.emplace(idx, std::make_unique<Page>()).first;
            it->second->fill(0);
        }
        mruIdx = idx;
        mruPage = it->second->data();
        return mruPage;
    }

    // 32 KiB pages would bloat unordered_map nodes; keep them out of
    // line so rehashing moves pointers, not pages.
    std::unordered_map<uint32_t, std::unique_ptr<Page>> pages;
    uint32_t mruIdx = ~0u;
    uint64_t *mruPage = nullptr;
};

/**
 * Annotates a freshly emulated DynInst with the oracle's true memory
 * dependence information: store sequence numbers, the youngest older
 * writer of each load's bytes, coverage and multi-writer splicing.
 * One instance per functional execution, fed in committed order.
 */
class DepAnnotator
{
  public:
    void
    annotate(DynInst &dyn)
    {
        dyn.storesBefore = storeCount;
        if (dyn.isStore()) {
            dyn.ssn = ++storeCount;
            uint64_t *writers = table.touch(dyn.effAddr);
            for (unsigned i = 0; i < dyn.inst.memSize(); ++i)
                writers[i] = dyn.ssn;
        } else if (dyn.isLoad()) {
            const uint64_t *writers = table.find(dyn.effAddr);
            if (!writers)
                return;
            uint64_t youngest = 0;
            bool multi = false;
            uint64_t first = writers[0];
            for (unsigned i = 0; i < dyn.inst.memSize(); ++i) {
                uint64_t w = writers[i];
                youngest = std::max(youngest, w);
                if (w != first)
                    multi = true;
            }
            dyn.lastWriterSsn = youngest;
            dyn.multiWriter = multi;
            // Full coverage: the youngest writer wrote every byte read.
            bool covered = youngest != 0;
            for (unsigned i = 0; covered && i < dyn.inst.memSize(); ++i)
                covered = writers[i] == youngest;
            dyn.fullCoverage = covered;
        }
    }

    uint64_t stores() const { return storeCount; }

  private:
    WriterTable table;
    uint64_t storeCount = 0;
};

} // namespace dmdp

#endif // DMDP_FUNC_WRITERTABLE_H
