#include "func/oracle.h"

#include <cassert>
#include <stdexcept>

namespace dmdp {

OracleStream::OracleStream(const Program &prog)
    : emu(prog)
{}

OracleStream::OracleStream(const Program &prog, MemImg &sharedMem,
                           uint32_t threadId, MtContext *mt)
    : emu(prog, sharedMem, threadId, mt)
{}

void
OracleStream::generateNext()
{
    assert(!emu.halted());
    DynInst &dyn = window.append();
    dyn = emu.step();
    dep.annotate(dyn);
}

const DynInst &
OracleStream::at(uint64_t seq)
{
    if (seq < window.base())
        throw std::runtime_error("oracle record already discarded");
    while (window.frontier() <= seq) {
        if (emu.halted())
            throw std::runtime_error("oracle fetched past program end");
        generateNext();
    }
    return window[seq];
}

void
OracleStream::rewindTo(uint64_t seq)
{
    if (seq < window.base())
        throw std::runtime_error("rewind below retire point");
    assert(seq <= cursor_);
    cursor_ = seq;
}

void
OracleStream::retireUpTo(uint64_t seq)
{
    // Records at and above the cursor stay replayable regardless of the
    // retire point (a fetched-ahead region a squash may rewind into).
    window.retireTo(std::min(seq, cursor_));
}

} // namespace dmdp
