#include "func/oracle.h"

#include <cassert>
#include <stdexcept>

#include "common/bitutil.h"

namespace dmdp {

OracleStream::OracleStream(const Program &prog)
    : emu(prog)
{}

void
OracleStream::generateNext()
{
    assert(!emu.halted());
    DynInst dyn = emu.step();

    if (dyn.isStore()) {
        dyn.storesBefore = storeCount;
        dyn.ssn = ++storeCount;
        auto &writers = byteWriter[wordAddr(dyn.effAddr)];
        unsigned offset = dyn.effAddr & 3u;
        for (unsigned i = 0; i < dyn.inst.memSize(); ++i)
            writers[offset + i] = dyn.ssn;
    } else if (dyn.isLoad()) {
        dyn.storesBefore = storeCount;
        auto it = byteWriter.find(wordAddr(dyn.effAddr));
        if (it != byteWriter.end()) {
            unsigned offset = dyn.effAddr & 3u;
            uint64_t youngest = 0;
            bool multi = false;
            uint64_t first = it->second[offset];
            for (unsigned i = 0; i < dyn.inst.memSize(); ++i) {
                uint64_t w = it->second[offset + i];
                youngest = std::max(youngest, w);
                if (w != first)
                    multi = true;
            }
            dyn.lastWriterSsn = youngest;
            dyn.multiWriter = multi;
            // Full coverage: the youngest writer wrote every byte read.
            bool covered = youngest != 0;
            for (unsigned i = 0; covered && i < dyn.inst.memSize(); ++i)
                covered = it->second[offset + i] == youngest;
            dyn.fullCoverage = covered;
        }
    } else {
        dyn.storesBefore = storeCount;
    }

    buffer.push_back(dyn);
}

const DynInst &
OracleStream::at(uint64_t seq)
{
    if (seq < bufferBase)
        throw std::runtime_error("oracle record already discarded");
    while (bufferBase + buffer.size() <= seq) {
        if (emu.halted())
            throw std::runtime_error("oracle fetched past program end");
        generateNext();
    }
    return buffer[seq - bufferBase];
}

bool
OracleStream::atEnd()
{
    if (cursor_ < bufferBase + buffer.size())
        return false;
    return emu.halted();
}

const DynInst &
OracleStream::peek()
{
    return at(cursor_);
}

DynInst
OracleStream::fetch()
{
    DynInst dyn = at(cursor_);
    ++cursor_;
    return dyn;
}

void
OracleStream::rewindTo(uint64_t seq)
{
    if (seq < bufferBase)
        throw std::runtime_error("rewind below retire point");
    assert(seq <= cursor_);
    cursor_ = seq;
}

void
OracleStream::retireUpTo(uint64_t seq)
{
    while (bufferBase < seq && !buffer.empty() && bufferBase < cursor_) {
        buffer.pop_front();
        ++bufferBase;
    }
}

} // namespace dmdp
