#include "coh/multicore.h"

#include <chrono>
#include <stdexcept>

namespace dmdp::coh {

namespace {

/** Routes a core's delivered invalidations into its pipeline. */
class PipelineSink : public CoreSink
{
  public:
    explicit PipelineSink(Pipeline &pipe) : pipe_(pipe) {}

    void
    deliverInvalidation(uint32_t addr) override
    {
        pipe_.coherenceInvalidate(addr);
    }

  private:
    Pipeline &pipe_;
};

} // namespace

uint64_t
MultiCoreResult::cohInvalsReceived() const
{
    uint64_t n = 0;
    for (const SimProfile &p : profiles)
        n += p.cohInvalsReceived;
    return n;
}

uint64_t
MultiCoreResult::cohReexecs() const
{
    uint64_t n = 0;
    for (const SimProfile &p : profiles)
        n += p.cohReexecs;
    return n;
}

MultiCoreResult
runMultiCore(const std::vector<CoreSpec> &cores,
             const MultiCoreOptions &options)
{
    const uint32_t n = static_cast<uint32_t>(cores.size());
    if (n == 0 || n > 8)
        throw std::invalid_argument("runMultiCore: core count " +
                                    std::to_string(cores.size()) +
                                    " out of range [1, 8]");

    auto t0 = std::chrono::steady_clock::now();
    MultiCoreResult result;

    // Shared functional substrate. Both images hold the union of every
    // thread's program sections (threads place code/data disjointly;
    // see workloads/shared_kernels and fuzz/proggen).
    MemImg progMem;
    MemImg commitMem;
    if (options.sharedMemory) {
        for (const CoreSpec &c : cores) {
            progMem.load(c.prog);
            commitMem.load(c.prog);
        }
    }
    MtMemory mtCommit(commitMem);
    MtContext ctx;

    CohParams coh = options.coh;
    coh.privateMix = !options.sharedMemory;
    Directory dir(coh, cores[0].cfg, n);

    std::vector<std::unique_ptr<Pipeline>> pipes;
    std::vector<std::unique_ptr<PipelineSink>> sinks;
    pipes.reserve(n);
    sinks.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        SimConfig cfg = cores[i].cfg;
        // Lockstep requirements (both are digest-excluded engine
        // knobs, so forcing them keeps cache keys comparable): every
        // core's local cycle counter must equal the global round, and
        // the only invalidations must be the directory's real ones.
        cfg.idleSkip = false;
        cfg.remoteInvalPerKiloCycle = 0.0;

        CoreWiring w;
        w.coreId = i;
        w.coh = &dir;
        if (options.sharedMemory) {
            w.sharedProgMem = &progMem;
            w.sharedCommitMem = &commitMem;
            w.mtCommit = &mtCommit;
            w.mt = &ctx;
        }
        pipes.push_back(
            std::make_unique<Pipeline>(cfg, cores[i].prog, w));
        Pipeline &pipe = *pipes.back();
        pipe.cancelToken = options.cancelToken;
        sinks.push_back(std::make_unique<PipelineSink>(pipe));
        dir.attachCore(i, sinks.back().get());
        if (options.onRetire)
            pipe.onRetire = [i, &options](const DynInst &dyn) {
                options.onRetire(i, dyn);
            };
        if (options.onLoadRetire)
            pipe.onLoadRetire = [i, &options](const DynInst &dyn,
                                              uint32_t delivered,
                                              bool localFwd) {
                options.onLoadRetire(i, dyn, delivered, localFwd);
            };
    }

    // Lockstep rounds: step every unfinished core once (core-id
    // order), keep finished cores' store buffers draining, then
    // deliver due invalidations. The recorded per-round oracle step
    // deltas are the run's SC schedule.
    std::vector<uint64_t> lastSteps(n, 0);
    uint64_t round = 0;
    uint64_t allFinishedRound = 0;
    while (true) {
        ++round;
        bool anyWork = false;
        bool allFinished = true;
        for (uint32_t i = 0; i < n; ++i) {
            Pipeline &pipe = *pipes[i];
            if (!pipe.finished()) {
                pipe.stepCycle();
                anyWork = true;
                if (options.sharedMemory) {
                    uint64_t steps = pipe.liveEmulator()->instCount();
                    uint64_t delta = steps - lastSteps[i];
                    if (delta > 0) {
                        lastSteps[i] = steps;
                        if (!result.schedule.empty() &&
                            result.schedule.back().thread == i) {
                            result.schedule.back().steps +=
                                static_cast<uint32_t>(delta);
                        } else {
                            result.schedule.push_back(MtSlice{
                                i, static_cast<uint32_t>(delta)});
                        }
                    }
                }
            } else if (pipe.drainTick()) {
                anyWork = true;
            }
            if (!pipe.finished())
                allFinished = false;
        }
        dir.tick(round);
        if (dir.pendingInvalidations())
            anyWork = true;
        if (!anyWork)
            break;
        if (allFinished) {
            if (allFinishedRound == 0)
                allFinishedRound = round;
            else if (round - allFinishedRound > options.drainGuardCycles)
                throw std::runtime_error(
                    "runMultiCore: drain tail exceeded " +
                    std::to_string(options.drainGuardCycles) +
                    " cycles (store buffer or directory stuck)");
        } else {
            allFinishedRound = 0;
        }
    }

    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    result.stats.reserve(n);
    result.profiles.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        pipes[i]->recordWallSeconds(wall);
        result.stats.push_back(pipes[i]->finishRun());
        result.profiles.push_back(pipes[i]->profile());
    }
    result.coh = dir.stats();
    result.cycles = round;
    if (options.sharedMemory)
        result.finalMem = commitMem;
    return result;
}

} // namespace dmdp::coh
