/**
 * @file
 * Lockstep N-core simulation over the shared LLC + directory
 * (docs/ARCHITECTURE.md §14). One Pipeline per core; every global
 * cycle steps each core exactly once in core-id order, then delivers
 * due invalidations. Per-core idle-skipping and synthetic invalidation
 * traffic are forced off (both are digest-excluded engine knobs) so a
 * core's local cycle counter always equals the global round index —
 * which makes directory message timestamps and per-core `now` directly
 * comparable, and makes the whole run a deterministic function of
 * (configs, programs, core order).
 *
 * Two modes:
 *  - Shared-memory (options.sharedMemory): all cores execute over one
 *    functional image and one committed image. The order the per-core
 *    oracle emulators interleave IS the run's SC schedule; it is
 *    recorded as MtSlices so func/mtshared.h can replay a full
 *    reference for the differential checkers.
 *  - Mix (independent programs): private memory per core, shared LLC
 *    with core-tagged addresses. No line is ever shared, so the
 *    directory must generate zero invalidations (asserted by tests).
 */

#ifndef DMDP_COH_MULTICORE_H
#define DMDP_COH_MULTICORE_H

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coh/directory.h"
#include "common/config.h"
#include "core/pipeline.h"
#include "core/simprofile.h"
#include "core/simstats.h"
#include "func/mtshared.h"
#include "isa/program.h"

namespace dmdp::coh {

/** One core of a multi-core run. */
struct CoreSpec
{
    std::string name;   ///< workload label (reports, cache keys)
    Program prog;
    SimConfig cfg;
};

struct MultiCoreOptions
{
    CohParams coh;
    /** One shared 32-bit address space (threads of one program set)
     *  vs. independent per-core programs behind a shared LLC. */
    bool sharedMemory = true;
    /** Global-cycle ceiling after every core finished, for the
     *  drain/delivery tail; exceeding it is a wiring bug. */
    uint64_t drainGuardCycles = 1u << 20;
    /** Cooperative cancellation (polled by every core every cycle). */
    const std::atomic<bool> *cancelToken = nullptr;
    /** Per-core retire observers (timing-invisible); see Pipeline. */
    std::function<void(uint32_t core, const DynInst &)> onRetire;
    std::function<void(uint32_t core, const DynInst &, uint32_t delivered,
                       bool localForward)>
        onLoadRetire;
};

/** Everything a multi-core run produces. */
struct MultiCoreResult
{
    std::vector<SimStats> stats;        ///< per core
    std::vector<SimProfile> profiles;   ///< per core (incl. coh_* counters)
    CohStats coh;                       ///< directory/LLC totals
    uint64_t cycles = 0;                ///< global rounds to full drain
    /** Shared-memory mode: the SC schedule the oracles executed. */
    std::vector<MtSlice> schedule;
    /** Shared-memory mode: the drained committed image. */
    MemImg finalMem;

    /** Cross-core sums of the per-core coherence profile counters. */
    uint64_t cohInvalsReceived() const;
    uint64_t cohReexecs() const;
};

/**
 * Run @p cores to completion (every core halted, every store buffer
 * drained, no invalidation in flight) and collect the results.
 * Throws std::invalid_argument for 0 or more than 8 cores.
 */
MultiCoreResult runMultiCore(const std::vector<CoreSpec> &cores,
                             const MultiCoreOptions &options = {});

} // namespace dmdp::coh

#endif // DMDP_COH_MULTICORE_H
