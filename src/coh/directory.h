/**
 * @file
 * Shared last-level cache with a MESI-style directory (multi-core mode,
 * docs/ARCHITECTURE.md §14). The private hierarchies (L1+L2 per core)
 * terminate here instead of in per-core DRAM: every private-L2 miss
 * becomes a sharedMiss() on the directory, and every committing store
 * announces itself through storeVisible(), which is the single place
 * invalidations are generated.
 *
 * The protocol is deliberately simplified to what the DMDP retire-time
 * check can observe:
 *
 *  - Lines are Invalid, Shared (any number of reader cores), or
 *    Modified (one owner). Reads of a remotely Modified line pay a
 *    downgrade latency (owner writes back, line becomes Shared).
 *  - A store upgrade queues one invalidation message per remote sharer;
 *    each is delivered invalLatency cycles later by tick(), clearing
 *    the target's private caches and inserting the line into its
 *    T-SSBF (Pipeline::coherenceInvalidate) so any in-flight load of
 *    that line re-executes at retire.
 *  - The directory is not inclusive and does not recall lines on LLC
 *    eviction; a silent private eviction leaves a stale sharer bit,
 *    which at worst sends a harmless invalidation later (conservative,
 *    never unsafe).
 *
 * Address spaces: in shared-memory mode every core uses the same 32-bit
 * space (tag 0). In mix mode (independent programs behind one LLC) each
 * core's space is tagged with its core id above bit 32, so distinct
 * cores never alias and the directory provably never generates
 * cross-core traffic — the negative tests assert exactly this.
 *
 * Fault-injection sites (src/inject): dirSharers may *clear* sharer
 * bits before invalidations are queued; dirInvalDrop may suppress a
 * delivery. Both model lost-message hazards the retire check must
 * absorb.
 */

#ifndef DMDP_COH_DIRECTORY_H
#define DMDP_COH_DIRECTORY_H

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "mem/cache.h"
#include "mem/cohport.h"
#include "mem/dram.h"

namespace dmdp::coh {

/** Coherence fabric parameters. Kept outside SimConfig so the
 *  per-core configDigest (and with it every cached single-core sweep
 *  result) is untouched; multi-core cache keys append these
 *  separately (driver::sweep). */
struct CohParams
{
    uint32_t invalLatency = 20;     ///< store upgrade -> remote delivery
    uint32_t downgradeLatency = 24; ///< remote Modified owner writeback
    CacheConfig llc{8 * 1024 * 1024, 16, 64, 24};
    /** Mix mode: tag each core's address space with its id (bit 32+)
     *  so independent programs never alias in the LLC or directory. */
    bool privateMix = false;
};

/** Directory + LLC counters (reported per multi-core run). */
struct CohStats
{
    uint64_t llcHits = 0;
    uint64_t llcMisses = 0;
    uint64_t dramAccesses = 0;
    uint64_t invalidationsSent = 0;
    uint64_t invalidationsDelivered = 0;
    uint64_t invalidationsDropped = 0;  ///< injection only; else 0
    uint64_t downgrades = 0;            ///< remote-M read interventions
    uint64_t upgrades = 0;              ///< stores that gained ownership
};

/** Per-line directory state. */
enum class LineState : uint8_t { Invalid, Shared, Modified };

/** Where a core's invalidations are delivered (the core's pipeline). */
class CoreSink
{
  public:
    virtual ~CoreSink() = default;
    virtual void deliverInvalidation(uint32_t addr) = 0;
};

/** The shared LLC + directory. One instance per multi-core run. */
class Directory : public CoherencePort
{
  public:
    Directory(const CohParams &params, const SimConfig &dramCfg,
              uint32_t numCores);

    /** Register @p core's delivery sink; must precede any traffic. */
    void attachCore(uint32_t core, CoreSink *sink);

    // ---- CoherencePort (called from each core's Hierarchy). ----
    uint32_t sharedMiss(uint32_t core, uint32_t addr, bool is_write,
                        bool is_fetch, uint64_t now) override;
    uint32_t storeVisible(uint32_t core, uint32_t addr,
                          uint64_t now) override;

    /**
     * Deliver every queued invalidation due at or before @p now, in
     * queue order. The lockstep driver calls this once per global
     * cycle, after stepping every core.
     */
    void tick(uint64_t now);

    bool pendingInvalidations() const { return !pending_.empty(); }

    const CohStats &stats() const { return stats_; }

    /** Test hook: directory state of the line containing @p addr as
     *  seen from @p core's address space. */
    struct Probe
    {
        LineState state = LineState::Invalid;
        uint32_t sharers = 0;   ///< bit i = core i holds the line
    };
    Probe probeLine(uint32_t core, uint32_t addr) const;

  private:
    struct DirEntry
    {
        LineState state = LineState::Invalid;
        uint32_t sharers = 0;
    };

    struct PendingInval
    {
        uint64_t deliverAt = 0;
        uint32_t core = 0;      ///< target
        uint32_t addr = 0;      ///< 32-bit line address in its space
    };

    /** Tagged byte address for the LLC/DRAM timing models. */
    uint64_t
    taggedAddr(uint32_t core, uint32_t addr) const
    {
        uint64_t a = addr;
        if (params_.privateMix)
            a |= static_cast<uint64_t>(core + 1) << 32;
        return a;
    }

    /** Directory map key: line address, core-tagged in mix mode. */
    uint64_t
    keyOf(uint32_t core, uint32_t addr) const
    {
        return taggedAddr(core, addr) / params_.llc.lineBytes;
    }

    CohParams params_;
    uint32_t numCores_;
    Cache llc_;
    Dram dram_;
    std::vector<CoreSink *> sinks_;
    std::unordered_map<uint64_t, DirEntry> dir_;
    std::deque<PendingInval> pending_;  ///< FIFO per deliverAt order
    CohStats stats_;
};

} // namespace dmdp::coh

#endif // DMDP_COH_DIRECTORY_H
