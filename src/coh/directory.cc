#include "coh/directory.h"

#include <cassert>
#include <stdexcept>
#include <string>

#include "common/bitutil.h"
#include "inject/faultport.h"

namespace dmdp::coh {

Directory::Directory(const CohParams &params, const SimConfig &dramCfg,
                     uint32_t numCores)
    : params_(params),
      numCores_(numCores),
      llc_(params.llc, "llc"),
      dram_(dramCfg),
      sinks_(numCores, nullptr)
{
    if (numCores == 0 || numCores > 32)
        throw std::invalid_argument("Directory: core count " +
                                    std::to_string(numCores) +
                                    " out of range [1, 32]");
}

void
Directory::attachCore(uint32_t core, CoreSink *sink)
{
    assert(core < numCores_);
    sinks_[core] = sink;
}

uint32_t
Directory::sharedMiss(uint32_t core, uint32_t addr, bool is_write,
                      bool is_fetch, uint64_t now)
{
    uint64_t tagged = taggedAddr(core, addr);
    uint32_t lat = params_.llc.hitLatency;
    bool hit = llc_.access(tagged, is_write);
    if (hit) {
        ++stats_.llcHits;
    } else {
        ++stats_.llcMisses;
        ++stats_.dramAccesses;
        lat += dram_.access(tagged, now + lat);
    }

    // Instruction fetches never participate in the data-line protocol
    // (the proxies do not store to code); no sharer tracking.
    if (is_fetch)
        return lat;

    DirEntry &entry = dir_[keyOf(core, addr)];
    uint32_t self = 1u << core;
    if (entry.state == LineState::Modified &&
        (entry.sharers & self) == 0) {
        // Remote owner must write back and downgrade before this core
        // can read the line.
        ++stats_.downgrades;
        lat += params_.downgradeLatency;
        entry.state = LineState::Shared;
    }
    if (entry.state == LineState::Invalid)
        entry.state = LineState::Shared;
    entry.sharers |= self;
    (void)is_write;     // ownership transfers at storeVisible()
    return lat;
}

uint32_t
Directory::storeVisible(uint32_t core, uint32_t addr, uint64_t now)
{
    DirEntry &entry = dir_[keyOf(core, addr)];
    uint32_t self = 1u << core;
    if (entry.state == LineState::Modified && entry.sharers == self)
        return 0;   // already the exclusive owner: silent upgrade

    uint32_t remote = entry.sharers & ~self;
    // Injection envelope: bits may only be *cleared* (suppressing an
    // invalidation — the stale-copy hazard); the injector never sets
    // bits, so mask with the true sharer vector after the hook.
    uint32_t perturbed = remote;
    DMDP_FAULT_HOOK(dirSharers, perturbed);
    perturbed &= remote;

    for (uint32_t target = 0; target < numCores_; ++target) {
        if ((perturbed >> target) & 1u) {
            pending_.push_back(
                PendingInval{now + params_.invalLatency, target, addr});
            ++stats_.invalidationsSent;
        }
    }

    uint32_t lat = 0;
    if (entry.state == LineState::Modified) {
        // Another core owns it: intervention before the upgrade.
        ++stats_.downgrades;
        lat += params_.downgradeLatency;
    }
    entry.state = LineState::Modified;
    entry.sharers = self;
    ++stats_.upgrades;
    return lat;
}

void
Directory::tick(uint64_t now)
{
    while (!pending_.empty() && pending_.front().deliverAt <= now) {
        PendingInval msg = pending_.front();
        pending_.pop_front();
        bool deliver = true;
        DMDP_FAULT_HOOK(dirInvalDrop, deliver);
        if (!deliver) {
            ++stats_.invalidationsDropped;
            continue;
        }
        ++stats_.invalidationsDelivered;
        assert(sinks_[msg.core] != nullptr);
        sinks_[msg.core]->deliverInvalidation(msg.addr);
    }
}

Directory::Probe
Directory::probeLine(uint32_t core, uint32_t addr) const
{
    auto it = dir_.find(keyOf(core, addr));
    if (it == dir_.end())
        return Probe{};
    return Probe{it->second.state, it->second.sharers};
}

} // namespace dmdp::coh
