/**
 * @file
 * Quickstart: assemble a small program, run it on all four machine
 * models (Baseline SQ/LQ, NoSQ, DMDP, Perfect) and print the key
 * statistics. This is the smallest complete use of the public API:
 *
 *   SimConfig cfg = SimConfig::forModel(LsuModel::DMDP);
 *   SimStats stats = Simulator::runAsm(cfg, source);
 */

#include <cstdio>

#include "sim/simulator.h"

using namespace dmdp;

int
main()
{
    // A register-spill loop: the store and the reload always collide
    // (the paper's "Always Colliding" class), so the store-queue-free
    // machines turn the memory round trip into a register dependence.
    const char *source = R"(
main:
    li   $t0, 20000         # iterations
    la   $t1, slot
loop:
    lw   $t2, 0($t1)        # reload (always hits the previous store)
    addi $t2, $t2, 3
    sw   $t2, 0($t1)        # spill
    mul  $t3, $t2, $t2      # independent work
    add  $t4, $t4, $t3
    addi $t0, $t0, -1
    bgtz $t0, loop
    halt

    .org 0x100000
slot: .word 0
)";

    std::printf("%-9s %10s %8s %9s %9s %9s\n", "model", "cycles", "IPC",
                "bypass%", "delayed%", "predic%");
    for (LsuModel model : {LsuModel::Baseline, LsuModel::NoSQ,
                           LsuModel::DMDP, LsuModel::Perfect}) {
        SimConfig cfg = SimConfig::forModel(model);
        SimStats stats = Simulator::runAsm(cfg, source);
        double loads = static_cast<double>(stats.loads);
        std::printf("%-9s %10llu %8.3f %8.1f%% %8.1f%% %8.1f%%\n",
                    lsuModelName(model),
                    static_cast<unsigned long long>(stats.cycles),
                    stats.ipc(), 100.0 * stats.loadsBypass / loads,
                    100.0 * stats.loadsDelayed / loads,
                    100.0 * stats.loadsPredicated / loads);
    }
    std::printf("\nExpected: the store-queue-free machines classify the "
                "reload as Bypassing\n(memory cloaking) and run the loop "
                "faster than the baseline's store-queue\nforwarding.\n");
    return 0;
}
