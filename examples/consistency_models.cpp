/**
 * @file
 * Store buffers and memory consistency (paper section IV-F / VI-e).
 * Runs a store-miss-heavy streaming workload under TSO and RMO with
 * several store buffer sizes. Because loads in DMDP never search the
 * store buffer, the buffer can grow cheaply — and RMO lets stores
 * commit around a missing head entry.
 */

#include <cstdio>

#include "isa/assembler.h"
#include "sim/simulator.h"
#include "workloads/kernels.h"

using namespace dmdp;

namespace {

Program
buildStream()
{
    // Block copy with an L2-sized footprint: store commits miss often,
    // keeping the store buffer under pressure.
    KernelParams params;
    params.kind = KernelKind::BlockCopy;
    params.iters = 30000;
    params.tableWords = 512 * 1024;

    Rng rng(7);
    KernelAsm frag = emitKernel(params, 0, 0x100000, rng);
    return assemble("main:\n" + frag.code + "    halt\n" + frag.data);
}

} // namespace

int
main()
{
    Program prog = buildStream();

    std::printf("%-5s %-5s %10s %8s %16s\n", "model", "SB", "cycles", "IPC",
                "SB-full stalls");
    for (Consistency consistency : {Consistency::TSO, Consistency::RMO}) {
        for (uint32_t sb_size : {8u, 16u, 32u, 64u}) {
            SimConfig cfg = SimConfig::forModel(LsuModel::DMDP);
            cfg.consistency = consistency;
            cfg.storeBufferSize = sb_size;
            SimStats stats = Simulator::run(cfg, prog);
            std::printf("%-5s %-5u %10llu %8.3f %16llu\n",
                        consistencyName(consistency), sb_size,
                        static_cast<unsigned long long>(stats.cycles),
                        stats.ipc(),
                        static_cast<unsigned long long>(
                            stats.sbFullStallCycles));
        }
    }
    std::printf("\nExpected: bigger store buffers hide more store misses "
                "(fewer buffer-full\nstalls, paper Fig. 14), and RMO "
                "tolerates a missing head entry better than TSO\nat equal "
                "capacity.\n");
    return 0;
}
