/**
 * @file
 * The paper's motivating example (Fig. 1): x[ptr]++ through an index
 * array with occasional duplicates — an Occasionally Colliding (OC)
 * dependence. NoSQ must delay every instance of the low-confidence
 * load until the predicted store commits; DMDP predicates it instead
 * and lets it run ahead.
 *
 * This example builds the workload with the kernel generator API and
 * sweeps the duplicate (collision) probability, printing how the three
 * machines diverge as the dependence becomes harder to predict.
 */

#include <cstdio>

#include "isa/assembler.h"
#include "sim/simulator.h"
#include "workloads/kernels.h"

using namespace dmdp;

namespace {

Program
buildChase(double dup_prob)
{
    KernelParams params;
    params.kind = KernelKind::PointerChaseInc;
    params.iters = 20000;
    params.tableWords = 4096;
    params.idxLen = 1024;
    params.dupProb = dup_prob;
    params.dupLag = 4;

    Rng rng(42);
    KernelAsm frag = emitKernel(params, 0, 0x100000, rng);
    return assemble("main:\n" + frag.code + "    halt\n" + frag.data);
}

} // namespace

int
main()
{
    std::printf("%-6s | %-30s | %-30s\n", "", "NoSQ", "DMDP");
    std::printf("%-6s | %8s %9s %7s | %8s %9s %7s\n", "dup", "IPC",
                "delayed%", "MPKI", "IPC", "predic%", "MPKI");

    for (double dup : {0.0, 0.1, 0.3, 0.5, 0.7}) {
        Program prog = buildChase(dup);

        SimConfig nosq_cfg = SimConfig::forModel(LsuModel::NoSQ);
        SimStats nosq = Simulator::run(nosq_cfg, prog);

        SimConfig dmdp_cfg = SimConfig::forModel(LsuModel::DMDP);
        SimStats dmdp = Simulator::run(dmdp_cfg, prog);

        std::printf("%-6.1f | %8.3f %8.1f%% %7.2f | %8.3f %8.1f%% %7.2f\n",
                    dup, nosq.ipc(),
                    100.0 * nosq.loadsDelayed / nosq.loads, nosq.mpki(),
                    dmdp.ipc(),
                    100.0 * dmdp.loadsPredicated / dmdp.loads, dmdp.mpki());
    }

    std::printf("\nExpected: DMDP holds its IPC across the whole sweep — "
                "predicated loads run ahead\nand the predicate picks the "
                "right source. NoSQ degrades in two ways: at moderate\n"
                "collision rates confidence sinks and half its loads are "
                "serialized (delayed);\nat high rates its balanced "
                "confidence counter oscillates around the threshold,\n"
                "so it keeps cloaking and paying full-recovery "
                "mispredictions (high MPKI).\nEven at dup=0 occasional "
                "chance collisions through the shared table create a\n"
                "few low-confidence loads.\n");
    return 0;
}
