/**
 * @file
 * Tuning the memory dependence machinery (paper sections IV-E, V).
 * Sweeps the confidence threshold and the update policy on an OC
 * workload, showing the cloak / predicate / mispredict trade-off that
 * the DMDP confidence predictor balances, and the size sensitivity of
 * the store distance predictor tables.
 */

#include <cstdio>

#include "isa/assembler.h"
#include "sim/simulator.h"
#include "workloads/kernels.h"

using namespace dmdp;

namespace {

Program
buildWorkload()
{
    // A mostly-but-not-always colliding dependence: confident enough
    // to tempt the cloaking path, wrong often enough to punish it.
    KernelParams params;
    params.kind = KernelKind::Histogram;
    params.iters = 25000;
    params.tableWords = 8192;
    params.idxLen = 1024;
    params.dupProb = 0.85;
    params.silentFrac = 0.05;
    params.dupLag = 3;

    Rng rng(11);
    KernelAsm frag = emitKernel(params, 0, 0x100000, rng);
    return assemble("main:\n" + frag.code + "    halt\n" + frag.data);
}

} // namespace

int
main()
{
    Program prog = buildWorkload();

    std::printf("--- confidence threshold sweep (DMDP, biased updates) ---\n");
    std::printf("%-10s %8s %9s %9s %8s\n", "threshold", "IPC", "bypass%",
                "predic%", "MPKI");
    for (uint32_t threshold : {15u, 31u, 63u, 95u, 119u}) {
        SimConfig cfg = SimConfig::forModel(LsuModel::DMDP);
        cfg.confidenceThreshold = threshold;
        SimStats s = Simulator::run(cfg, prog);
        std::printf("%-10u %8.3f %8.1f%% %8.1f%% %8.2f\n", threshold,
                    s.ipc(), 100.0 * s.loadsBypass / s.loads,
                    100.0 * s.loadsPredicated / s.loads, s.mpki());
    }

    std::printf("\n--- update policy (DMDP) ---\n");
    for (bool biased : {true, false}) {
        SimConfig cfg = SimConfig::forModel(LsuModel::DMDP);
        cfg.biasedConfidence = biased;
        SimStats s = Simulator::run(cfg, prog);
        std::printf("%-22s IPC %.3f  predicated %.1f%%  MPKI %.2f\n",
                    biased ? "divide-by-2 (paper)" : "decrement-by-1",
                    s.ipc(), 100.0 * s.loadsPredicated / s.loads, s.mpki());
    }

    std::printf("\n--- store distance predictor size (DMDP) ---\n");
    for (uint32_t entries : {64u, 256u, 1024u, 4096u}) {
        SimConfig cfg = SimConfig::forModel(LsuModel::DMDP);
        cfg.sdpEntries = entries;
        SimStats s = Simulator::run(cfg, prog);
        std::printf("%-6u entries/table  IPC %.3f  MPKI %.2f\n", entries,
                    s.ipc(), s.mpki());
    }

    std::printf("\nExpected: a low threshold cloaks aggressively and "
                "mispredicts more; a high\nthreshold predicates almost "
                "everything. The biased policy pushes loads toward\n"
                "predication, trading micro-ops for recoveries.\n");
    return 0;
}
